//! True random number generation from four-row activation — the
//! QUAC-TRNG direction the paper points at (§VII: *"QUAC-TRNG leveraged
//! the command sequence in ComputeDRAM to open four rows simultaneously
//! and explored different combinations of initial values in these four
//! rows to generate random numbers using the charge sharing among
//! them"*).
//!
//! Mechanism: a column whose four cells hold two ones and two zeros
//! charge-shares to ≈ `Vdd/2`; letting the sense amplifier **complete**
//! (no trailing PRECHARGE — the opposite of Half-m) forces a metastable
//! resolution. Columns whose static margin (weights, injection, offset)
//! is small resolve differently from trial to trial — true randomness
//! from decoder-timing jitter and thermal noise. Columns with a large
//! static margin are deterministic; the extractor removes them.
//!
//! Extraction pairs the *same column of two consecutive samples*
//! (Von Neumann on temporal pairs): conditioned on the column's static
//! margin the two trials are i.i.d., so emitted bits are unbiased and
//! deterministic columns simply never emit.

use fracdram_model::snapshot::ModuleWriteSnapshot;
use fracdram_model::{Cycles, Geometry, RowAddr, SubarrayAddr};
use fracdram_softmc::{CompiledProgram, MemoryController, Program};
use fracdram_stats::bits::BitVec;

use crate::error::{FracDramError, Result};
use crate::frac::physical_pattern;
use crate::multirow::glitch_program;
use crate::rowcopy::copy_program;
use crate::rowsets::Quad;

/// A DRAM true-random-number generator bound to one sub-array.
///
/// Every sample runs the same two-part program: a **refill prefix**
/// (four in-DRAM copies restoring the balanced pattern into the quad)
/// followed by the **fire tail** (the four-row activation, sense, read,
/// close). The refill is a pure function of the seed rows — every cell
/// it touches ends at a full rail — so its post-state is identical from
/// sample to sample. The generator therefore snapshots the post-refill
/// sub-array state once and restores it on later samples under the same
/// guards as the controller's write-prefix cache, skipping 4×22 of the
/// 105 command cycles' worth of kernel work per sample. The fire tail
/// always runs live: that is where the metastable resolution — the
/// entropy — happens.
#[derive(Debug)]
pub struct Trng {
    quad: Quad,
    sample_cycles: u64,
    /// The four seed→quad copies, prebuilt at bind.
    refill: Program,
    /// Compiled form of the refill, for stats/trace/clock accounting on
    /// a snapshot restore.
    refill_compiled: CompiledProgram,
    /// Glitch + sense-to-completion + read + close, prebuilt at bind.
    fire: Program,
    /// Local rows the refill touches: the four seed rows plus the quad.
    touched_rows: Vec<usize>,
    /// Post-refill sub-array capture, anchored to the refill start.
    snapshot: Option<ModuleWriteSnapshot>,
}

/// Throughput report of a TRNG session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrngReport {
    /// Extracted random bits produced.
    pub bits: usize,
    /// Raw samples drawn.
    pub samples: usize,
    /// Total DRAM command cycles consumed.
    pub cycles: Cycles,
    /// Extracted throughput in megabits per second of DRAM command time.
    pub mbit_per_s: f64,
}

impl Trng {
    /// Binds a TRNG to `subarray`. Requires four-row activation (groups
    /// B, C, D — and DDR4 modules in QUAC-TRNG's measurements).
    ///
    /// Reserves four seed rows (local rows 16–19) holding the balanced
    /// pattern and writes them once.
    ///
    /// # Errors
    ///
    /// Returns [`FracDramError::Unsupported`] without four-row support,
    /// or [`FracDramError::BadRowSet`] when the sub-array is too small.
    pub fn bind(mc: &mut MemoryController, subarray: SubarrayAddr) -> Result<Self> {
        let profile = mc.module().profile();
        if !profile.supports_four_row() {
            return Err(FracDramError::Unsupported {
                group: profile.group,
                operation: "four-row activation (TRNG)",
            });
        }
        let geometry: Geometry = *mc.module().geometry();
        if geometry.rows_per_subarray < 20 {
            return Err(FracDramError::BadRowSet {
                reason: "TRNG needs at least 20 rows per sub-array".into(),
            });
        }
        let quad = Quad::canonical(&geometry, subarray, profile.group)?;
        let seeds = [16, 17, 18, 19].map(|local| subarray.row(&geometry, local));
        // Balanced pattern: physical one in seed rows 0 and 2, zero in
        // 1 and 3 — per column, the quad receives two ones and two zeros.
        let balanced_one = [true, false, true, false];
        for (seed, one) in seeds.iter().zip(balanced_one) {
            let bits = physical_pattern(mc, *seed, one);
            mc.write_row(*seed, &bits)?;
        }
        let refill = Self::refill_program(&seeds, &quad, &geometry);
        let fire = Self::fire_program(&quad, &geometry);
        let refill_compiled = CompiledProgram::compile(mc.timing(), &refill);
        let mut touched_rows: Vec<usize> = quad.local_roles().to_vec();
        touched_rows.extend([16, 17, 18, 19]);
        touched_rows.sort_unstable();
        touched_rows.dedup();
        let sample_cycles = refill.total_cycles().value() + fire.total_cycles().value();
        Ok(Trng {
            quad,
            sample_cycles,
            refill,
            refill_compiled,
            fire,
            touched_rows,
            snapshot: None,
        })
    }

    /// The sample prefix: refill the quad from the seed rows (four
    /// in-DRAM copies).
    fn refill_program(seeds: &[RowAddr; 4], quad: &Quad, geometry: &Geometry) -> Program {
        let mut p = Program::new();
        for (seed, dst) in seeds.iter().zip(quad.rows(geometry)) {
            p.extend_from(&copy_program(*seed, dst));
        }
        p
    }

    /// The sample tail: run the four-row activation to completion, read
    /// the resolved bits, close.
    fn fire_program(quad: &Quad, geometry: &Geometry) -> Program {
        let mut p = Program::new();
        p.extend_from(&glitch_program(quad.r1(geometry), quad.r2(geometry)));
        p.extend_from(
            &Program::builder()
                .nop()
                .delay(6)
                .read(quad.r1(geometry).bank)
                .pre(quad.r1(geometry).bank)
                .delay(5)
                .build(),
        );
        p
    }

    /// Runs the refill prefix, restoring the cached post-refill snapshot
    /// when it is provably equivalent to a live replay (same guards as
    /// the controller's write-prefix cache; the refill's post-state is
    /// rail-exact, so it is independent of both the start clock and
    /// whatever the previous fire left in the quad).
    fn run_refill(&mut self, mc: &mut MemoryController) -> Result<()> {
        let sub = self.quad.subarray();
        let total = self.refill_compiled.total_cycles();
        if mc.prefix_caching()
            && mc.module().write_fastpath_eligible(sub.bank, sub.subarray)
            && mc
                .module()
                .fault_windows_clear(mc.clock(), mc.clock() + total)
            && mc.cycle_budget().is_none_or(|b| total <= b)
        {
            let t0 = mc.clock();
            mc.module_mut().drain_bank(sub.bank, t0);
            if mc.module().bank_idle(sub.bank) {
                if let Some(snap) = &self.snapshot {
                    if snap.environment() == mc.module().environment() {
                        mc.module_mut().restore_rows_snapshot(snap, t0);
                        mc.account_restored_program(&self.refill_compiled, t0);
                        return Ok(());
                    }
                }
                mc.run(&self.refill)?;
                self.snapshot = Some(mc.module_mut().capture_rows_snapshot(
                    sub.bank,
                    sub.subarray,
                    &self.touched_rows,
                    t0,
                ));
                return Ok(());
            }
        }
        mc.run(&self.refill)?;
        Ok(())
    }

    /// Cycles one raw sample costs.
    pub fn sample_cycles(&self) -> Cycles {
        Cycles(self.sample_cycles)
    }

    /// Draws one raw sample: every column resolves its metastable
    /// four-row share (biased and partially deterministic — extract
    /// before use).
    ///
    /// # Errors
    ///
    /// Propagates controller errors.
    pub fn raw_sample(&mut self, mc: &mut MemoryController) -> Result<BitVec> {
        self.run_refill(mc)?;
        let outcome = mc.run(&self.fire)?;
        Ok(BitVec::from_bools(&outcome.single_read()?))
    }

    /// Produces at least `n` extracted random bits, returning the bits
    /// and the throughput report.
    ///
    /// # Errors
    ///
    /// Propagates controller errors.
    pub fn random_bits(
        &mut self,
        mc: &mut MemoryController,
        n: usize,
    ) -> Result<(BitVec, TrngReport)> {
        let mut out = BitVec::new();
        let mut samples = 0usize;
        let start = mc.clock();
        while out.len() < n {
            let a = self.raw_sample(mc)?;
            let b = self.raw_sample(mc)?;
            samples += 2;
            // Von Neumann on temporal pairs: emit only where the two
            // trials disagree.
            for col in 0..a.len().min(b.len()) {
                let (x, y) = (a.get(col).unwrap(), b.get(col).unwrap());
                if x != y {
                    out.push(x);
                }
            }
            if samples > 64 && out.is_empty() {
                return Err(FracDramError::BadRowSet {
                    reason: "no entropy columns: every column resolves deterministically".into(),
                });
            }
        }
        let cycles = Cycles(mc.clock() - start);
        let seconds = cycles.to_seconds().value();
        let report = TrngReport {
            bits: out.len(),
            samples,
            cycles,
            mbit_per_s: out.len() as f64 / seconds / 1e6,
        };
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fracdram_model::{Geometry, GroupId, Module, ModuleConfig};
    use fracdram_stats::nist;

    fn controller(group: GroupId) -> MemoryController {
        let geometry = Geometry {
            banks: 2,
            subarrays_per_bank: 2,
            rows_per_subarray: 32,
            columns: 512,
        };
        MemoryController::new(Module::new(ModuleConfig::single_chip(group, 41, geometry)))
    }

    #[test]
    fn entropy_columns_flip_between_samples() {
        let mut mc = controller(GroupId::C);
        let mut trng = Trng::bind(&mut mc, SubarrayAddr::new(0, 0)).unwrap();
        let a = trng.raw_sample(&mut mc).unwrap();
        let b = trng.raw_sample(&mut mc).unwrap();
        let differing = a.hamming_distance(&b);
        assert!(differing > 0, "no column resolved differently");
        assert!(
            differing < a.len(),
            "every column flipped — margins cannot all be zero"
        );
    }

    #[test]
    fn extracted_bits_are_balanced_and_unpatterned() {
        let mut mc = controller(GroupId::B);
        let mut trng = Trng::bind(&mut mc, SubarrayAddr::new(0, 0)).unwrap();
        let (bits, report) = trng.random_bits(&mut mc, 4_000).unwrap();
        assert!(bits.len() >= 4_000);
        assert_eq!(report.bits, bits.len());
        assert!(report.mbit_per_s > 0.0);
        let stream = bits.slice(0, 4_000);
        assert!(
            nist::frequency(&stream).passed(),
            "{:?}",
            nist::frequency(&stream)
        );
        assert!(nist::runs(&stream).passed(), "{:?}", nist::runs(&stream));
        assert!(
            nist::cumulative_sums(&stream).passed(),
            "{:?}",
            nist::cumulative_sums(&stream)
        );
    }

    #[test]
    fn deterministic_columns_never_emit() {
        // With zero temporal noise every column is deterministic and the
        // generator must refuse rather than emit constants.
        let geometry = Geometry {
            banks: 2,
            subarrays_per_bank: 2,
            rows_per_subarray: 32,
            columns: 128,
        };
        let params = fracdram_model::DeviceParams {
            share_temporal_sigma: 0.0,
            sense_noise_sigma: fracdram_model::Volts(0.0),
            bitline_noise_sigma: fracdram_model::Volts(0.0),
            ..fracdram_model::DeviceParams::default()
        };
        let mut mc = MemoryController::new(Module::new(ModuleConfig {
            group: GroupId::B,
            seed: 41,
            geometry,
            chips: 1,
            params,
        }));
        let mut trng = Trng::bind(&mut mc, SubarrayAddr::new(0, 0)).unwrap();
        let err = trng.random_bits(&mut mc, 100).unwrap_err();
        assert!(matches!(err, FracDramError::BadRowSet { .. }));
    }

    #[test]
    fn unsupported_groups_are_rejected() {
        for group in [GroupId::A, GroupId::F, GroupId::K] {
            let mut mc = controller(group);
            assert!(
                Trng::bind(&mut mc, SubarrayAddr::new(0, 0)).is_err(),
                "{group}"
            );
        }
    }

    #[test]
    fn sample_cost_is_dominated_by_the_refill_copies() {
        let mut mc = controller(GroupId::B);
        let trng = Trng::bind(&mut mc, SubarrayAddr::new(0, 0)).unwrap();
        // 4 copies (22 each) + glitch (3) + sense/read/close tail (14).
        assert_eq!(trng.sample_cycles().value(), 4 * 22 + 3 + 14);
    }

    #[test]
    fn refill_snapshot_restore_matches_live_replay() {
        // Same silicon, same sample sequence; one controller restores
        // the cached post-refill snapshot, the other replays every
        // refill live. Metastable fires amplify any state difference,
        // so identical bit streams prove the restore is exact.
        let mut cached = controller(GroupId::B);
        let mut live = controller(GroupId::B);
        live.set_prefix_caching(false);
        let mut trng_cached = Trng::bind(&mut cached, SubarrayAddr::new(0, 0)).unwrap();
        let mut trng_live = Trng::bind(&mut live, SubarrayAddr::new(0, 0)).unwrap();
        for round in 0..6 {
            let a = trng_cached.raw_sample(&mut cached).unwrap();
            let b = trng_live.raw_sample(&mut live).unwrap();
            assert_eq!(a, b, "round {round}");
            assert_eq!(cached.clock(), live.clock(), "round {round}");
        }
        assert_eq!(cached.stats(), live.stats());
        assert!(
            cached.model_perf().snapshot_hits > 0,
            "fast path never engaged"
        );
        assert_eq!(live.model_perf().snapshot_hits, 0);
    }
}
