//! The ComputeDRAM-style in-memory majority-of-three (baseline, §II-D).
//!
//! On modules that can open three rows (group B), the glitch sequence
//! `ACT(R1) – PRE – ACT(R2)` opens `{R1, R2, R3}`; their cells
//! charge-share on the bit-lines, the sense amplifier resolves each
//! column to the majority value, and the result is restored into all
//! three rows. FracDRAM uses this operation both as the baseline that
//! F-MAJ improves upon (Fig. 9, Fig. 10) and as the destructive readout
//! that *verifies* fractional values (§IV-B2).

use fracdram_model::Cycles;
use fracdram_softmc::{MemoryController, Program};

use crate::error::{FracDramError, Result};
use crate::multirow::glitch_program;
use crate::rowsets::Triplet;

/// Idle cycles after the second ACTIVATE so the sense amplifier resolves
/// the shared charge (internal sense latency is 4 cycles).
const SENSE_WAIT: u64 = 6;

/// Builds the majority program: glitch sequence, sense wait, READ of the
/// resolved row buffer, then PRECHARGE.
pub fn maj3_program(triplet: &Triplet, geometry: &fracdram_model::Geometry) -> Program {
    let r1 = triplet.r1(geometry);
    let r2 = triplet.r2(geometry);
    let mut p = glitch_program(r1, r2);
    p.extend_from(
        &Program::builder()
            .nop()
            .delay(SENSE_WAIT)
            .read(r1.bank)
            .pre(r1.bank)
            .delay(5)
            .build(),
    );
    p
}

/// Total memory cycles of the majority program (command sequence plus
/// sense wait and precharge completion).
pub fn maj3_cycles(triplet: &Triplet, geometry: &fracdram_model::Geometry) -> Cycles {
    maj3_program(triplet, geometry).total_cycles()
}

/// Writes the three operands into the triplet rows (role order
/// `[R1, R2, R3]`) with legal timing.
///
/// # Errors
///
/// Fails when an operand width does not match the module row.
pub fn write_operands(
    mc: &mut MemoryController,
    triplet: &Triplet,
    operands: [&[bool]; 3],
) -> Result<()> {
    let width = mc.module().row_bits();
    for bits in operands {
        if bits.len() != width {
            return Err(FracDramError::OperandWidth {
                got: bits.len(),
                expected: width,
            });
        }
    }
    let geometry = *mc.module().geometry();
    let rows = triplet.rows(&geometry);
    for (row, bits) in rows.iter().zip(operands) {
        mc.write_row(*row, bits)?;
    }
    Ok(())
}

/// A prebuilt MAJ3 execution plan for repeated-trial hot loops.
///
/// [`maj3`] rebuilds the glitch program on every call; a plan builds it
/// once for a fixed triplet and replays it per trial, so the only
/// per-trial work is the operand writes and the program run. Results
/// are bit-identical to [`maj3`] by construction.
#[derive(Debug, Clone)]
pub struct Maj3Plan {
    rows: [fracdram_model::RowAddr; 3],
    program: Program,
}

impl Maj3Plan {
    /// Prebuilds the plan for `triplet` on `mc`'s module.
    ///
    /// # Errors
    ///
    /// Returns [`FracDramError::Unsupported`] on modules that cannot
    /// open three rows.
    pub fn new(mc: &MemoryController, triplet: &Triplet) -> Result<Maj3Plan> {
        let profile = mc.module().profile();
        if !profile.supports_three_row() {
            return Err(FracDramError::Unsupported {
                group: profile.group,
                operation: "three-row activation (MAJ3)",
            });
        }
        let geometry = *mc.module().geometry();
        Ok(Maj3Plan {
            rows: triplet.rows(&geometry),
            program: maj3_program(triplet, &geometry),
        })
    }

    /// Stores three operands (role order `[R1, R2, R3]`) and executes
    /// the majority — the full ComputeDRAM flow.
    ///
    /// # Errors
    ///
    /// Returns [`FracDramError::OperandWidth`] on width mismatches and
    /// propagates controller errors.
    pub fn run(&self, mc: &mut MemoryController, operands: [&[bool]; 3]) -> Result<Vec<bool>> {
        let width = mc.module().row_bits();
        for bits in operands {
            if bits.len() != width {
                return Err(FracDramError::OperandWidth {
                    got: bits.len(),
                    expected: width,
                });
            }
        }
        for (row, bits) in self.rows.iter().zip(operands) {
            mc.write_row(*row, bits)?;
        }
        self.run_in_place(mc)
    }

    /// Executes the majority on operands already stored in the rows.
    ///
    /// # Errors
    ///
    /// Propagates controller errors.
    pub fn run_in_place(&self, mc: &mut MemoryController) -> Result<Vec<bool>> {
        let outcome = mc.run(&self.program)?;
        Ok(outcome.single_read()?)
    }
}

/// Executes the in-memory MAJ3 on operands already stored in the triplet
/// rows, returning the per-column majority result.
///
/// The result is also restored into all three rows (they are clobbered),
/// exactly as on hardware.
///
/// # Errors
///
/// Returns [`FracDramError::Unsupported`] on modules that cannot open
/// three rows, and propagates controller errors.
pub fn maj3_in_place(mc: &mut MemoryController, triplet: &Triplet) -> Result<Vec<bool>> {
    Maj3Plan::new(mc, triplet)?.run_in_place(mc)
}

/// Stores three operands and executes MAJ3 — the full ComputeDRAM flow.
/// Repeated-trial loops should prebuild a [`Maj3Plan`] instead — this
/// convenience wrapper rebuilds the plan on every call.
///
/// # Errors
///
/// Same conditions as [`write_operands`] and [`maj3_in_place`].
pub fn maj3(
    mc: &mut MemoryController,
    triplet: &Triplet,
    operands: [&[bool]; 3],
) -> Result<Vec<bool>> {
    write_operands(mc, triplet, operands)?;
    maj3_in_place(mc, triplet)
}

/// The six operand combinations the paper uses to test majority
/// correctness (§VI-A2): every pattern with a mixed population, so the
/// result is decided by majority rather than unanimity.
pub const TEST_COMBINATIONS: [[bool; 3]; 6] = [
    [true, false, false],
    [false, true, false],
    [false, false, true],
    [false, true, true],
    [true, false, true],
    [true, true, false],
];

/// Expected majority of a combination.
pub fn expected_majority(combo: [bool; 3]) -> bool {
    (combo.iter().filter(|&&b| b).count()) >= 2
}

/// Per-column coverage of the baseline MAJ3: the fraction of columns
/// that produce the correct majority for **all six** test combinations
/// (a column passes only if it never errs — the paper's definition).
///
/// # Errors
///
/// Same conditions as [`maj3`].
pub fn maj3_coverage(mc: &mut MemoryController, triplet: &Triplet) -> Result<f64> {
    let width = mc.module().row_bits();
    let mut ok = vec![true; width];
    for combo in TEST_COMBINATIONS {
        let rows: Vec<Vec<bool>> = combo.iter().map(|&b| vec![b; width]).collect();
        let result = maj3(mc, triplet, [&rows[0], &rows[1], &rows[2]])?;
        let expect = expected_majority(combo);
        for (col, &bit) in result.iter().enumerate() {
            if bit != expect {
                ok[col] = false;
            }
        }
    }
    Ok(ok.iter().filter(|&&b| b).count() as f64 / width as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fracdram_model::{Geometry, GroupId, Module, ModuleConfig, SubarrayAddr};

    fn controller(group: GroupId) -> MemoryController {
        MemoryController::new(Module::new(ModuleConfig::single_chip(
            group,
            31,
            Geometry::tiny(),
        )))
    }

    fn triplet(mc: &MemoryController) -> Triplet {
        Triplet::first(mc.module().geometry(), SubarrayAddr::new(0, 0))
    }

    #[test]
    fn majority_logic_on_uniform_operands() {
        let mut mc = controller(GroupId::B);
        let t = triplet(&mc);
        let width = mc.module().row_bits();
        for combo in TEST_COMBINATIONS {
            let rows: Vec<Vec<bool>> = combo.iter().map(|&b| vec![b; width]).collect();
            let result = maj3(&mut mc, &t, [&rows[0], &rows[1], &rows[2]]).unwrap();
            let expect = expected_majority(combo);
            let correct = result.iter().filter(|&&b| b == expect).count();
            // The primary-row asymmetry makes some columns err — that is
            // the paper's 9 % baseline error — but most must be right.
            assert!(
                correct * 10 >= width * 7,
                "combo {combo:?}: only {correct}/{width} columns correct"
            );
        }
    }

    #[test]
    fn mixed_pattern_majority_per_column() {
        let mut mc = controller(GroupId::B);
        let t = triplet(&mc);
        let width = mc.module().row_bits();
        let a: Vec<bool> = (0..width).map(|i| i % 2 == 0).collect();
        let b: Vec<bool> = (0..width).map(|i| i % 3 == 0).collect();
        let c: Vec<bool> = (0..width).map(|i| i % 5 == 0).collect();
        let result = maj3(&mut mc, &t, [&a, &b, &c]).unwrap();
        let mut correct = 0;
        for col in 0..width {
            let expect = [a[col], b[col], c[col]].iter().filter(|&&x| x).count() >= 2;
            if result[col] == expect {
                correct += 1;
            }
        }
        assert!(correct * 10 >= width * 7, "{correct}/{width}");
    }

    #[test]
    fn result_is_restored_to_all_three_rows() {
        let mut mc = controller(GroupId::B);
        let t = triplet(&mc);
        let width = mc.module().row_bits();
        let ones = vec![true; width];
        let zeros = vec![false; width];
        let result = maj3(&mut mc, &t, [&ones, &ones, &zeros]).unwrap();
        let geometry = *mc.module().geometry();
        for row in t.rows(&geometry) {
            assert_eq!(mc.read_row(row).unwrap(), result, "{row}");
        }
    }

    #[test]
    fn unsupported_groups_are_rejected() {
        for group in [GroupId::A, GroupId::C, GroupId::J] {
            let mut mc = controller(group);
            let t = triplet(&mc);
            let err = maj3_in_place(&mut mc, &t).unwrap_err();
            assert!(matches!(err, FracDramError::Unsupported { .. }), "{group}");
        }
    }

    #[test]
    fn operand_width_is_validated() {
        let mut mc = controller(GroupId::B);
        let t = triplet(&mc);
        let short = vec![true; 8];
        let full = vec![true; mc.module().row_bits()];
        let err = maj3(&mut mc, &t, [&short, &full, &full]).unwrap_err();
        assert!(matches!(err, FracDramError::OperandWidth { .. }));
    }

    #[test]
    fn coverage_is_high_but_not_perfect_on_group_b() {
        let mut mc = controller(GroupId::B);
        let t = triplet(&mc);
        let coverage = maj3_coverage(&mut mc, &t).unwrap();
        assert!(coverage > 0.80, "coverage = {coverage}");
        assert!(coverage <= 1.0);
    }

    #[test]
    fn expected_majority_truth_table() {
        assert!(!expected_majority([false, false, false]));
        assert!(!expected_majority([true, false, false]));
        assert!(expected_majority([true, true, false]));
        assert!(expected_majority([true, true, true]));
    }
}
