//! Retention-time profiling (§IV-B1, §V-A) — the first verification
//! method for fractional values.
//!
//! Cell charge leaks monotonically, so for the same cell a *lower*
//! starting voltage means a *shorter* retention time. Measuring how the
//! retention-time distribution of a row shifts as more Frac operations
//! are issued is therefore an indirect, hardware-feasible readout of
//! the stored voltage: if the buckets migrate monotonically downward,
//! the cell's voltage was lowered incrementally — the paper's Fig. 6.
//!
//! The measurement follows the paper exactly: store full `Vdd` in the
//! target row, optionally issue Frac operations, stop all commands for
//! time *t*, read, and record which bits survived; repeating with
//! different *t* brackets each cell's retention time into one of six
//! coarse buckets.

use fracdram_model::{RowAddr, Seconds};
use fracdram_softmc::MemoryController;

use crate::error::Result;
use crate::frac::frac_program;

/// The six retention-time ranges of Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RetentionBucket {
    /// The cell reads zero immediately after the last operation (its
    /// voltage is already below the sensing threshold).
    Zero,
    /// Died within 10 minutes.
    UpTo10Min,
    /// Died between 10 and 30 minutes.
    Min10To30,
    /// Died between 30 and 60 minutes.
    Min30To60,
    /// Died between 1 and 12 hours.
    Hour1To12,
    /// Still alive after 12 hours.
    Over12Hours,
}

impl RetentionBucket {
    /// All buckets, shortest first.
    pub const ALL: [RetentionBucket; 6] = [
        RetentionBucket::Zero,
        RetentionBucket::UpTo10Min,
        RetentionBucket::Min10To30,
        RetentionBucket::Min30To60,
        RetentionBucket::Hour1To12,
        RetentionBucket::Over12Hours,
    ];

    /// Rank of the bucket (0 = shortest retention).
    pub fn rank(self) -> usize {
        Self::ALL.iter().position(|&b| b == self).unwrap()
    }

    /// Human-readable range label (as in the Fig. 6 axis).
    pub fn label(self) -> &'static str {
        match self {
            RetentionBucket::Zero => "0",
            RetentionBucket::UpTo10Min => "0-10 min",
            RetentionBucket::Min10To30 => "10-30 min",
            RetentionBucket::Min30To60 => "30-60 min",
            RetentionBucket::Hour1To12 => "1-12 h",
            RetentionBucket::Over12Hours => "> 12 h",
        }
    }
}

/// The probe delays bracketing the buckets: a near-immediate read plus
/// the four boundary times.
fn probe_delays() -> [Seconds; 5] {
    [
        Seconds(0.001),
        Seconds::from_minutes(10.0),
        Seconds::from_minutes(30.0),
        Seconds::from_minutes(60.0),
        Seconds::from_hours(12.0),
    ]
}

/// Builds the logical bit pattern that stores **physical** full `Vdd` in
/// every cell of a row (logical zeros on anti-cell columns — the
/// paper's §II-C convention: "we store opposite logic values to
/// anti-cells, so that they physically hold the same voltage as
/// true-cells").
pub fn physical_ones_pattern(mc: &mut MemoryController, row: RowAddr) -> Vec<bool> {
    crate::frac::physical_pattern(mc, row, true)
}

/// Measures the retention bucket of every cell in `row` after
/// `frac_ops` Frac operations.
///
/// One independent trial per probe time: store physical `Vdd`, issue the
/// Frac operations, stay silent for the probe delay, then read and mark
/// which cells lost their data. A cell's bucket is set by the first
/// probe at which it reads wrong.
///
/// # Errors
///
/// Propagates controller errors.
pub fn measure_row(
    mc: &mut MemoryController,
    row: RowAddr,
    frac_ops: usize,
) -> Result<Vec<RetentionBucket>> {
    let pattern = physical_ones_pattern(mc, row);
    let width = pattern.len();
    let mut buckets = vec![RetentionBucket::Over12Hours; width];
    let mut alive = vec![true; width];
    for (probe, delay) in probe_delays().into_iter().enumerate() {
        mc.write_row(row, &pattern)?;
        if frac_ops > 0 {
            mc.run(&frac_program(row, frac_ops))?;
        }
        mc.wait_seconds(delay);
        let read = mc.read_row(row)?;
        for col in 0..width {
            if alive[col] && read[col] != pattern[col] {
                alive[col] = false;
                buckets[col] = RetentionBucket::ALL[probe];
            }
        }
    }
    Ok(buckets)
}

/// Like [`measure_row`], but repeats the whole profile `votes` times
/// and takes the per-cell **median** bucket — the paper's defense
/// against boundary flicker (a cell whose true retention lands exactly
/// on a probe boundary can bracket differently from trial to trial,
/// which would misclassify it as "others" in Fig. 6).
///
/// # Errors
///
/// Propagates controller errors.
pub fn measure_row_voted(
    mc: &mut MemoryController,
    row: RowAddr,
    frac_ops: usize,
    votes: usize,
) -> Result<Vec<RetentionBucket>> {
    let votes = votes.max(1);
    let mut trials: Vec<Vec<RetentionBucket>> = Vec::with_capacity(votes);
    for _ in 0..votes {
        trials.push(measure_row(mc, row, frac_ops)?);
    }
    let width = trials[0].len();
    Ok((0..width)
        .map(|col| {
            let mut ranks: Vec<usize> = trials.iter().map(|t| t[col].rank()).collect();
            ranks.sort_unstable();
            RetentionBucket::ALL[ranks[ranks.len() / 2]]
        })
        .collect())
}

/// Bucket counts of one measured row — a column of the Fig. 6 heatmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketCounts {
    /// Number of cells per bucket, in [`RetentionBucket::ALL`] order.
    pub counts: [usize; 6],
}

impl BucketCounts {
    /// Tallies measured buckets.
    pub fn from_buckets(buckets: &[RetentionBucket]) -> Self {
        let mut counts = [0usize; 6];
        for b in buckets {
            counts[b.rank()] += 1;
        }
        BucketCounts { counts }
    }

    /// Total cells tallied.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// The probability density over buckets (one heatmap column).
    pub fn pdf(&self) -> [f64; 6] {
        let total = self.total().max(1) as f64;
        let mut pdf = [0.0; 6];
        for (p, &c) in pdf.iter_mut().zip(&self.counts) {
            *p = c as f64 / total;
        }
        pdf
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &BucketCounts) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

/// Change-pattern category of one cell across increasing Frac counts
/// (the bracketed proportions of Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellCategory {
    /// `> 12 h` at every Frac count — retention longer than the profile
    /// can resolve.
    LongRetention,
    /// Retention bucket decreases monotonically (and strictly at least
    /// once) as Frac operations accumulate — the proof-of-concept cells.
    MonotonicDecrease,
    /// Anything else (variable retention time, boundary flicker).
    Other,
}

/// Classifies each cell from its bucket trajectory over Frac counts
/// (`per_count[n][col]` = bucket of `col` after `n` Frac operations).
///
/// # Panics
///
/// Panics if the trajectories are empty or have mismatched widths.
pub fn classify_cells(per_count: &[Vec<RetentionBucket>]) -> Vec<CellCategory> {
    assert!(!per_count.is_empty(), "need at least one Frac count");
    let width = per_count[0].len();
    assert!(
        per_count.iter().all(|row| row.len() == width),
        "mismatched widths"
    );
    (0..width)
        .map(|col| {
            let ranks: Vec<usize> = per_count.iter().map(|row| row[col].rank()).collect();
            if ranks
                .iter()
                .all(|&r| r == RetentionBucket::Over12Hours.rank())
            {
                CellCategory::LongRetention
            } else if ranks.windows(2).all(|w| w[1] <= w[0]) {
                CellCategory::MonotonicDecrease
            } else {
                CellCategory::Other
            }
        })
        .collect()
}

/// Category proportions — the bracketed `[long, monotonic, other]`
/// numbers printed on each Fig. 6 panel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CategoryShares {
    /// Fraction of cells with unresolvably long retention.
    pub long: f64,
    /// Fraction of cells whose retention decreases monotonically.
    pub monotonic: f64,
    /// Fraction with irregular patterns.
    pub other: f64,
}

impl CategoryShares {
    /// Computes shares from per-cell categories.
    pub fn from_categories(categories: &[CellCategory]) -> Self {
        let total = categories.len().max(1) as f64;
        let count = |c: CellCategory| categories.iter().filter(|&&x| x == c).count() as f64 / total;
        CategoryShares {
            long: count(CellCategory::LongRetention),
            monotonic: count(CellCategory::MonotonicDecrease),
            other: count(CellCategory::Other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fracdram_model::{Geometry, GroupId, Module, ModuleConfig};

    fn controller(group: GroupId) -> MemoryController {
        MemoryController::new(Module::new(ModuleConfig::single_chip(
            group,
            61,
            Geometry::tiny(),
        )))
    }

    #[test]
    fn bucket_ranks_are_ordered() {
        let ranks: Vec<usize> = RetentionBucket::ALL.iter().map(|b| b.rank()).collect();
        assert_eq!(ranks, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(RetentionBucket::Zero.label(), "0");
        assert_eq!(RetentionBucket::Over12Hours.label(), "> 12 h");
    }

    #[test]
    fn physical_ones_survive_initial_read() {
        let mut mc = controller(GroupId::B);
        let row = RowAddr::new(0, 3);
        let pattern = physical_ones_pattern(&mut mc, row);
        // The pattern mixes logical ones (true cells) and zeros (anti).
        assert!(pattern.iter().any(|&b| b));
        assert!(pattern.iter().any(|&b| !b));
        mc.write_row(row, &pattern).unwrap();
        assert_eq!(mc.read_row(row).unwrap(), pattern);
    }

    #[test]
    fn more_frac_ops_shift_buckets_down() {
        let mut mc = controller(GroupId::B);
        let row = RowAddr::new(0, 5);
        let none = measure_row(&mut mc, row, 0).unwrap();
        let five = measure_row(&mut mc, row, 5).unwrap();
        let mean = |b: &[RetentionBucket]| {
            b.iter().map(|x| x.rank()).sum::<usize>() as f64 / b.len() as f64
        };
        assert!(
            mean(&five) < mean(&none),
            "5 Frac ops must shorten retention: {} vs {}",
            mean(&five),
            mean(&none)
        );
    }

    #[test]
    fn full_vdd_profile_is_dominated_by_long_retention() {
        let mut mc = controller(GroupId::B);
        let buckets = measure_row(&mut mc, RowAddr::new(1, 7), 0).unwrap();
        let counts = BucketCounts::from_buckets(&buckets);
        assert_eq!(counts.total(), 64);
        // At full Vdd the distribution skews heavily to > 12 h.
        assert!(counts.counts[5] * 2 > counts.total(), "{counts:?}");
        let pdf = counts.pdf();
        assert!((pdf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn classification_finds_monotonic_cells() {
        let mut mc = controller(GroupId::B);
        let row = RowAddr::new(0, 9);
        let per_count: Vec<Vec<RetentionBucket>> = (0..=5)
            .map(|n| measure_row(&mut mc, row, n).unwrap())
            .collect();
        let categories = classify_cells(&per_count);
        let shares = CategoryShares::from_categories(&categories);
        assert!(
            shares.monotonic > 0.2,
            "monotonic share = {}",
            shares.monotonic
        );
        assert!(shares.long + shares.monotonic + shares.other > 0.999);
        assert!(shares.other < 0.2, "other share = {}", shares.other);
    }

    #[test]
    fn voting_reduces_boundary_flicker() {
        let mut mc = controller(GroupId::B);
        let row = RowAddr::new(0, 11);
        // With three votes, two independent voted profiles of the same
        // configuration agree on at least as many cells as two raw ones.
        let raw_a = measure_row(&mut mc, row, 3).unwrap();
        let raw_b = measure_row(&mut mc, row, 3).unwrap();
        let voted_a = measure_row_voted(&mut mc, row, 3, 3).unwrap();
        let voted_b = measure_row_voted(&mut mc, row, 3, 3).unwrap();
        let disagree = |a: &[RetentionBucket], b: &[RetentionBucket]| {
            a.iter().zip(b).filter(|(x, y)| x != y).count()
        };
        // Voting may not strictly dominate on a 64-column sample, but it
        // must stay within a whisker of the raw repeatability and keep
        // the flicker population small in absolute terms.
        assert!(
            disagree(&voted_a, &voted_b) <= disagree(&raw_a, &raw_b) + 2,
            "voted {} vs raw {}",
            disagree(&voted_a, &voted_b),
            disagree(&raw_a, &raw_b)
        );
        assert!(disagree(&voted_a, &voted_b) <= 6);
        assert_eq!(voted_a.len(), 64);
    }

    #[test]
    fn single_vote_equals_plain_measurement_shape() {
        let mut mc = controller(GroupId::B);
        let row = RowAddr::new(1, 4);
        let voted = measure_row_voted(&mut mc, row, 0, 1).unwrap();
        assert_eq!(voted.len(), 64);
        // Full Vdd: dominated by long retention either way.
        let long = voted
            .iter()
            .filter(|&&b| b == RetentionBucket::Over12Hours)
            .count();
        assert!(long * 2 > voted.len());
    }

    #[test]
    fn bucket_counts_merge() {
        let mut a = BucketCounts::from_buckets(&[RetentionBucket::Zero, RetentionBucket::Zero]);
        let b = BucketCounts::from_buckets(&[RetentionBucket::Over12Hours]);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.counts[0], 2);
        assert_eq!(a.counts[5], 1);
    }

    #[test]
    fn classify_rejects_mismatched_widths() {
        let r = std::panic::catch_unwind(|| {
            classify_cells(&[
                vec![RetentionBucket::Zero],
                vec![RetentionBucket::Zero, RetentionBucket::Zero],
            ])
        });
        assert!(r.is_err());
    }

    #[test]
    fn guarded_group_profile_is_unchanged_by_frac() {
        let mut mc = controller(GroupId::J);
        let row = RowAddr::new(0, 2);
        let none = measure_row(&mut mc, row, 0).unwrap();
        let five = measure_row(&mut mc, row, 5).unwrap();
        // Groups J/K/L: "sending Frac operations has no effect in the
        // retention time profile".
        assert_eq!(none, five);
    }
}
