//! Error type of the FracDRAM core library.

use std::error::Error as StdError;
use std::fmt;

use fracdram_model::{GroupId, ModelError};
use fracdram_softmc::ControllerError;

/// Errors reported by FracDRAM operations.
#[derive(Debug, Clone, PartialEq)]
pub enum FracDramError {
    /// The memory controller / device model rejected a command.
    Controller(ControllerError),
    /// The target module's DRAM group cannot perform the requested
    /// operation (Table I capability matrix).
    Unsupported {
        /// Group of the target module.
        group: GroupId,
        /// The operation that is not available on this group.
        operation: &'static str,
    },
    /// An operand had the wrong width for the module row.
    OperandWidth {
        /// Supplied width in bits.
        got: usize,
        /// Module row width in bits.
        expected: usize,
    },
    /// The requested rows do not form a usable multi-row activation set
    /// on this module (wrong sub-array, out of range, or the decoder
    /// does not glitch for this pair).
    BadRowSet {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A REFRESH was requested while rows still hold fractional values
    /// (§III-C: refresh destroys fractional state).
    RefreshWouldDestroyFractional {
        /// Number of rows currently holding fractional values.
        rows: usize,
    },
}

impl fmt::Display for FracDramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FracDramError::Controller(e) => write!(f, "{e}"),
            FracDramError::Unsupported { group, operation } => {
                write!(f, "group {group} modules cannot perform {operation}")
            }
            FracDramError::OperandWidth { got, expected } => {
                write!(f, "operand is {got} bits, module row is {expected}")
            }
            FracDramError::BadRowSet { reason } => write!(f, "bad row set: {reason}"),
            FracDramError::RefreshWouldDestroyFractional { rows } => write!(
                f,
                "refresh would destroy fractional values in {rows} row(s)"
            ),
        }
    }
}

impl StdError for FracDramError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            FracDramError::Controller(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ControllerError> for FracDramError {
    fn from(e: ControllerError) -> Self {
        FracDramError::Controller(e)
    }
}

impl From<ModelError> for FracDramError {
    fn from(e: ModelError) -> Self {
        FracDramError::Controller(ControllerError::Model(e))
    }
}

/// Convenience result alias for FracDRAM operations.
pub type Result<T> = std::result::Result<T, FracDramError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let e = FracDramError::Unsupported {
            group: GroupId::J,
            operation: "Frac",
        };
        assert!(e.to_string().contains("group J"));
        let e = FracDramError::OperandWidth {
            got: 8,
            expected: 64,
        };
        assert!(e.to_string().contains("8 bits"));
        let e = FracDramError::BadRowSet {
            reason: "rows span two sub-arrays".into(),
        };
        assert!(e.to_string().contains("sub-arrays"));
        let e = FracDramError::RefreshWouldDestroyFractional { rows: 3 };
        assert!(e.to_string().contains("3 row(s)"));
    }

    #[test]
    fn conversions_and_source() {
        let e: FracDramError = ModelError::BankClosed { bank: 1 }.into();
        assert!(matches!(e, FracDramError::Controller(_)));
        assert!(e.source().is_some());
        assert!(FracDramError::RefreshWouldDestroyFractional { rows: 1 }
            .source()
            .is_none());
    }
}
