//! # fracdram — fractional values in off-the-shelf DRAM
//!
//! A faithful reproduction of **FracDRAM** (Gao, Tziantzioulis,
//! Wentzlaff — MICRO 2022): storing *fractional* voltages — neither 0
//! nor `Vdd` — in unmodified, commodity DDR3 DRAM using specially timed
//! command sequences, and the applications that capability unlocks.
//!
//! The paper's platform is real silicon behind a SoftMC FPGA controller;
//! this reproduction drives the same command sequences, cycle for cycle,
//! against the charge-level device simulator of [`fracdram_model`]
//! through the software memory controller of [`fracdram_softmc`].
//!
//! ## The primitives
//!
//! * [`frac`] — **Frac** (§III-A): `ACTIVATE`–`PRECHARGE` back-to-back
//!   interrupts a row activation before the sense amplifiers enable,
//!   leaving every cell of the row at a fractional voltage. 7 cycles.
//! * [`halfm`] — **Half-m** (§III-B): a trailing `PRECHARGE` interrupts
//!   a *four-row* activation, storing Half values on masked columns and
//!   weak ones/zeros elsewhere — three distinguishable states in a row.
//! * [`multirow`] — the decoder-glitch sequence behind both, plus the
//!   empirical capability survey of Table I.
//!
//! ## Verification (§IV-B)
//!
//! Fractional values cannot be read directly (sensing destroys them),
//! so the paper proves their existence indirectly:
//! [`retention`] profiles how Frac shifts retention-time buckets
//! (Fig. 6), and [`verify`] runs the two-majority procedure whose
//! `X₁ = 1, X₂ = 0` signature is impossible for rail values (Fig. 7).
//!
//! ## Use cases (§VI)
//!
//! * [`maj3`] — the ComputeDRAM baseline majority (three-row).
//! * [`fmaj`] — **F-MAJ**: majority-of-three via *four*-row activation
//!   with a fractional helper row; extends in-memory majority to
//!   modules that cannot open three rows and cuts the error rate of the
//!   original from 9.1 % to 2.2 % (Figs. 9–10).
//! * [`puf`] — the **Frac-based PUF**: ten Frac operations push a row to
//!   `Vdd/2`; the sense amplifiers' manufacturing offsets then resolve a
//!   device-unique fingerprint in ≈ 1.5 µs (Figs. 11–12).
//!
//! ## Example
//!
//! ```
//! use fracdram::{Challenge, FracDram};
//! use fracdram_model::{Geometry, GroupId, Module, ModuleConfig, RowAddr};
//!
//! # fn main() -> Result<(), fracdram::FracDramError> {
//! let module = Module::new(ModuleConfig::single_chip(GroupId::B, 42, Geometry::tiny()));
//! let mut dram = FracDram::new(module);
//!
//! // Store a fractional value in row 5 of bank 0...
//! dram.store_fractional(RowAddr::new(0, 5), true, 3)?;
//! // ...which blocks refresh until it is consumed (§III-C).
//! assert!(dram.refresh().is_err());
//! dram.read_row(RowAddr::new(0, 5))?;
//! dram.refresh()?;
//!
//! // Fingerprint the device.
//! let response = dram.puf_response(Challenge::new(0, 9))?;
//! assert_eq!(response.len(), 64);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compute;
pub mod error;
pub mod fmaj;
pub mod frac;
pub mod halfm;
pub mod maj3;
pub mod multirow;
pub mod puf;
pub mod retention;
pub mod reverse;
pub mod rowcopy;
pub mod rowsets;
pub mod session;
pub mod ternary;
pub mod trng;
pub mod verify;

pub use compute::{ComputeEngine, MajorityKind};
pub use error::{FracDramError, Result};
pub use fmaj::FmajConfig;
pub use frac::FRAC_CYCLES;
pub use multirow::Capabilities;
pub use puf::{Challenge, PUF_FRAC_OPS};
pub use retention::{CategoryShares, CellCategory, RetentionBucket};
pub use rowsets::{Quad, Triplet};
pub use session::{FracDram, PrefixStats, TrialRunner};
pub use ternary::{TernaryStore, Trit};
pub use trng::Trng;
pub use verify::{FracPlacement, VerifySetup};
