//! Row-set layout for multi-row activation.
//!
//! Multi-row activation only ever opens rows within one sub-array, and
//! only specific `(R1, R2)` activation pairs glitch the decoder (§II-D,
//! §VI-A1). This module encodes the canonical row sets the paper uses:
//!
//! * [`Triplet`] — the ComputeDRAM three-row set `{4k, 4k+1, 4k+2}`,
//!   opened by `ACT(4k+1) – PRE – ACT(4k+2)` (group B only);
//! * [`Quad`] — a four-row span, opened by a two-bit-differing pair.
//!   The paper uses `{0, 1, 8, 9}` via `ACT(8) – PRE – ACT(1)` on group
//!   B and `{0, 1, 2, 3}` via `ACT(1) – PRE – ACT(2)` on groups C/D.
//!
//! Rows are addressed *within a sub-array* here; [`Triplet::rows`] /
//! [`Quad::rows`] return bank-level [`RowAddr`]s in **activation-role
//! order** `[R1, R2, R3, R4]`, matching the role-indexed charge-sharing
//! weights of the device model (the "primary row" asymmetry of §VI-A2).

use fracdram_model::{Geometry, GroupId, RowAddr, SubarrayAddr};

use crate::error::{FracDramError, Result};

/// A ComputeDRAM-style three-row activation set within one sub-array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Triplet {
    subarray: SubarrayAddr,
    /// `k` in `{4k, 4k+1, 4k+2}`.
    base4: usize,
}

impl Triplet {
    /// The triplet `{4k, 4k+1, 4k+2}` of sub-array `subarray`.
    ///
    /// # Errors
    ///
    /// Fails when the triplet does not fit in the sub-array.
    pub fn new(geometry: &Geometry, subarray: SubarrayAddr, k: usize) -> Result<Self> {
        if 4 * k + 2 >= geometry.rows_per_subarray {
            return Err(FracDramError::BadRowSet {
                reason: format!(
                    "triplet base 4*{k} does not fit in {} rows",
                    geometry.rows_per_subarray
                ),
            });
        }
        Ok(Triplet { subarray, base4: k })
    }

    /// The paper's canonical triplet: the first three rows (`k = 0`).
    pub fn first(geometry: &Geometry, subarray: SubarrayAddr) -> Self {
        Triplet::new(geometry, subarray, 0).expect("any sub-array holds rows 0..=2")
    }

    /// The sub-array this triplet lives in.
    pub fn subarray(&self) -> SubarrayAddr {
        self.subarray
    }

    /// The first explicitly activated row, `R1 = 4k + 1`.
    pub fn r1(&self, geometry: &Geometry) -> RowAddr {
        self.subarray.row(geometry, 4 * self.base4 + 1)
    }

    /// The second explicitly activated row, `R2 = 4k + 2`.
    pub fn r2(&self, geometry: &Geometry) -> RowAddr {
        self.subarray.row(geometry, 4 * self.base4 + 2)
    }

    /// The implicitly opened row, `R3 = 4k`.
    pub fn r3(&self, geometry: &Geometry) -> RowAddr {
        self.subarray.row(geometry, 4 * self.base4)
    }

    /// All three rows in activation-role order `[R1, R2, R3]`.
    pub fn rows(&self, geometry: &Geometry) -> [RowAddr; 3] {
        [self.r1(geometry), self.r2(geometry), self.r3(geometry)]
    }
}

/// A four-row activation set (span) within one sub-array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Quad {
    subarray: SubarrayAddr,
    /// Local rows in activation-role order `[R1, R2, R3, R4]`.
    roles: [usize; 4],
}

impl Quad {
    /// A quad from an explicit `(R1, R2)` pair of local rows differing in
    /// exactly two address bits; the implicit rows `R3 < R4` complete the
    /// span.
    ///
    /// # Errors
    ///
    /// Fails when the pair does not differ in exactly two bits or the
    /// span does not fit in the sub-array.
    pub fn from_pair(
        geometry: &Geometry,
        subarray: SubarrayAddr,
        r1: usize,
        r2: usize,
    ) -> Result<Self> {
        let diff = r1 ^ r2;
        if diff.count_ones() != 2 {
            return Err(FracDramError::BadRowSet {
                reason: format!(
                    "rows {r1} and {r2} differ in {} bits, need 2",
                    diff.count_ones()
                ),
            });
        }
        let fixed = r1 & !diff;
        let mut implicit: Vec<usize> = (0..4)
            .map(|s| {
                // Enumerate the span by distributing subset bits of `diff`.
                let mut bits = diff;
                let lo = bits & bits.wrapping_neg();
                bits ^= lo;
                let hi = bits;
                fixed | if s & 1 != 0 { lo } else { 0 } | if s & 2 != 0 { hi } else { 0 }
            })
            .filter(|&r| r != r1 && r != r2)
            .collect();
        implicit.sort_unstable();
        let roles = [r1, r2, implicit[0], implicit[1]];
        if roles.iter().any(|&r| r >= geometry.rows_per_subarray) {
            return Err(FracDramError::BadRowSet {
                reason: format!(
                    "span {roles:?} does not fit in {} rows",
                    geometry.rows_per_subarray
                ),
            });
        }
        Ok(Quad { subarray, roles })
    }

    /// The paper's canonical quad for a group: `{0, 1, 8, 9}` activated
    /// as `(R1, R2) = (8, 1)` on group B, `{0, 1, 2, 3}` activated as
    /// `(R1, R2) = (1, 2)` on groups C and D (§V-C, §VI-A2).
    ///
    /// # Errors
    ///
    /// Fails when the group cannot open four rows at all.
    pub fn canonical(geometry: &Geometry, subarray: SubarrayAddr, group: GroupId) -> Result<Self> {
        let profile = group.profile();
        if !profile.supports_four_row() {
            return Err(FracDramError::Unsupported {
                group,
                operation: "four-row activation",
            });
        }
        match group {
            GroupId::B => Quad::from_pair(geometry, subarray, 8, 1),
            _ => Quad::from_pair(geometry, subarray, 1, 2),
        }
    }

    /// The sub-array this quad lives in.
    pub fn subarray(&self) -> SubarrayAddr {
        self.subarray
    }

    /// The first explicitly activated row.
    pub fn r1(&self, geometry: &Geometry) -> RowAddr {
        self.subarray.row(geometry, self.roles[0])
    }

    /// The second explicitly activated row.
    pub fn r2(&self, geometry: &Geometry) -> RowAddr {
        self.subarray.row(geometry, self.roles[1])
    }

    /// All four rows in activation-role order `[R1, R2, R3, R4]`.
    pub fn rows(&self, geometry: &Geometry) -> [RowAddr; 4] {
        [
            self.subarray.row(geometry, self.roles[0]),
            self.subarray.row(geometry, self.roles[1]),
            self.subarray.row(geometry, self.roles[2]),
            self.subarray.row(geometry, self.roles[3]),
        ]
    }

    /// Local (sub-array) row numbers in activation-role order.
    pub fn local_roles(&self) -> [usize; 4] {
        self.roles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> Geometry {
        Geometry::tiny() // 32 rows per sub-array
    }

    #[test]
    fn triplet_rows_follow_computedram_pattern() {
        let g = geometry();
        let sa = SubarrayAddr::new(0, 0);
        let t = Triplet::new(&g, sa, 1).unwrap();
        assert_eq!(t.r1(&g).row, 5);
        assert_eq!(t.r2(&g).row, 6);
        assert_eq!(t.r3(&g).row, 4);
        assert_eq!(t.rows(&g).map(|r| r.row), [5, 6, 4]);
    }

    #[test]
    fn triplet_in_second_subarray_offsets_rows() {
        let g = geometry();
        let sa = SubarrayAddr::new(1, 1);
        let t = Triplet::first(&g, sa);
        // Sub-array 1 starts at bank-level row 32.
        assert_eq!(t.rows(&g).map(|r| r.row), [33, 34, 32]);
        assert!(t.rows(&g).iter().all(|r| r.bank == 1));
    }

    #[test]
    fn triplet_must_fit() {
        let g = geometry();
        let sa = SubarrayAddr::new(0, 0);
        assert!(Triplet::new(&g, sa, 7).is_ok()); // rows 28..=30
        assert!(Triplet::new(&g, sa, 8).is_err()); // rows 32..=34 > 31
    }

    #[test]
    fn quad_from_paper_pair_b() {
        let g = geometry();
        let sa = SubarrayAddr::new(0, 0);
        let q = Quad::from_pair(&g, sa, 8, 1).unwrap();
        assert_eq!(q.local_roles(), [8, 1, 0, 9]);
        assert_eq!(q.rows(&g).map(|r| r.row), [8, 1, 0, 9]);
    }

    #[test]
    fn quad_from_paper_pair_cd() {
        let g = geometry();
        let sa = SubarrayAddr::new(0, 1);
        let q = Quad::from_pair(&g, sa, 1, 2).unwrap();
        assert_eq!(q.local_roles(), [1, 2, 0, 3]);
        // Bank-level rows offset by the sub-array base.
        assert_eq!(q.rows(&g).map(|r| r.row), [33, 34, 32, 35]);
    }

    #[test]
    fn quad_rejects_non_two_bit_pairs() {
        let g = geometry();
        let sa = SubarrayAddr::new(0, 0);
        assert!(Quad::from_pair(&g, sa, 1, 3).is_err()); // 1 bit
        assert!(Quad::from_pair(&g, sa, 0, 7).is_err()); // 3 bits
        assert!(Quad::from_pair(&g, sa, 5, 5).is_err()); // 0 bits
    }

    #[test]
    fn quad_rejects_out_of_range_span() {
        let g = geometry();
        let sa = SubarrayAddr::new(0, 0);
        // Pair (24, 36): span includes rows >= 32.
        assert!(Quad::from_pair(&g, sa, 24, 36).is_err());
    }

    #[test]
    fn canonical_quads_match_paper() {
        let g = geometry();
        let sa = SubarrayAddr::new(0, 0);
        let qb = Quad::canonical(&g, sa, GroupId::B).unwrap();
        assert_eq!(qb.local_roles(), [8, 1, 0, 9]);
        let qc = Quad::canonical(&g, sa, GroupId::C).unwrap();
        assert_eq!(qc.local_roles(), [1, 2, 0, 3]);
        let qd = Quad::canonical(&g, sa, GroupId::D).unwrap();
        assert_eq!(qd.local_roles(), [1, 2, 0, 3]);
    }

    #[test]
    fn canonical_quad_refused_on_incapable_group() {
        let g = geometry();
        let sa = SubarrayAddr::new(0, 0);
        let err = Quad::canonical(&g, sa, GroupId::E).unwrap_err();
        assert!(matches!(err, FracDramError::Unsupported { .. }));
    }
}
