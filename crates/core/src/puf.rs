//! The Frac-based Physical Unclonable Function (§VI-B).
//!
//! Ten Frac operations drive every cell of a row to ≈ `Vdd/2`. A normal
//! read then forces each column's sense amplifier to resolve a
//! metastable input: the decision follows the amplifier's static,
//! manufacturing-random input offset. The read-out data is therefore a
//! device fingerprint — reproducible on the same module (the offsets are
//! static), unique across modules (the offsets are die-specific), and
//! robust to temperature and supply voltage (a comparator's decision at
//! its trip point barely depends on either).
//!
//! Challenge = (bank, row); response = the row's read-out bits. An 8 KB
//! row yields a 65 536-bit response in ≈ 1.5 µs.

use fracdram_model::{Cycles, Geometry, RowAddr};
use fracdram_softmc::{MemoryController, Program};
use fracdram_stats::bits::BitVec;
use fracdram_stats::extractor::von_neumann;

use crate::error::Result;
use crate::frac::{frac_program, require_frac_support, FRAC_CYCLES};
use crate::rowcopy::COPY_CYCLES;

/// Frac operations per evaluation — "ten Frac operations are enough to
/// generate a voltage close to Vdd/2 for PUF" (§VI-B1).
pub const PUF_FRAC_OPS: usize = 10;

/// A PUF challenge: the address of the memory segment to fingerprint.
/// The paper fixes the segment length to one 8 KB row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Challenge {
    /// Bank index.
    pub bank: usize,
    /// Bank-level row number.
    pub row: usize,
}

impl Challenge {
    /// Creates a challenge.
    pub fn new(bank: usize, row: usize) -> Self {
        Challenge { bank, row }
    }

    /// The row address this challenge targets.
    pub fn addr(&self) -> RowAddr {
        RowAddr::new(self.bank, self.row)
    }
}

/// A deterministic, well-spread set of `n` distinct challenges for a
/// geometry (split-mix hashing over a counter; the same seed yields the
/// same challenge set, so it can be replayed against every module).
pub fn challenge_set(geometry: &Geometry, n: usize, seed: u64) -> Vec<Challenge> {
    let banks = geometry.banks;
    let rows = geometry.rows_per_bank();
    assert!(
        n <= banks * rows,
        "cannot draw {n} distinct challenges from {banks}x{rows} rows"
    );
    let mut out = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::new();
    let mut counter = 0u64;
    while out.len() < n {
        let mut z = seed
            .wrapping_add(counter.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        counter += 1;
        let bank = (z as usize) % banks;
        let row = ((z >> 32) as usize) % rows;
        if seen.insert((bank, row)) {
            out.push(Challenge::new(bank, row));
        }
    }
    out
}

/// Evaluates one challenge: store all ones, issue ten Frac operations,
/// read the row out (destructively). Returns the response bits.
///
/// # Errors
///
/// Returns [`crate::FracDramError::Unsupported`] on groups J/K/L (their
/// timing guards defeat Frac) and propagates controller errors.
pub fn evaluate(mc: &mut MemoryController, challenge: Challenge) -> Result<BitVec> {
    evaluate_with(mc, challenge, PUF_FRAC_OPS)
}

/// [`evaluate`] with an explicit Frac count (for studying response
/// quality versus preparation depth).
///
/// # Errors
///
/// Same conditions as [`evaluate`].
pub fn evaluate_with(
    mc: &mut MemoryController,
    challenge: Challenge,
    frac_ops: usize,
) -> Result<BitVec> {
    require_frac_support(mc)?;
    let addr = challenge.addr();
    // Physical full Vdd in every cell (polarity-corrected, §II-C).
    let ones = crate::frac::physical_pattern(mc, addr, true);
    mc.write_row(addr, &ones)?;
    mc.run(&frac_program(addr, frac_ops))?;
    let bits = mc.read_row(addr)?;
    Ok(BitVec::from_bools(&bits))
}

/// Evaluates a whole challenge set in order, batching consecutive
/// bank-disjoint challenges through
/// [`MemoryController::run_scheduled`].
///
/// Each challenge becomes one self-contained program (write the ones
/// pattern, issue the Frac burst, read the row out), so a batch of
/// them is a set of independent per-bank command streams — exactly
/// what the cross-bank scheduler merges. Responses are byte-identical
/// to a per-challenge [`evaluate`] loop: programs still execute in
/// challenge order at the same cycle offsets, and the merge is pure
/// bus-occupancy accounting (`sched_*` counters).
///
/// # Errors
///
/// Same conditions as [`evaluate`].
pub fn evaluate_set(mc: &mut MemoryController, challenges: &[Challenge]) -> Result<Vec<BitVec>> {
    require_frac_support(mc)?;
    let mut out = Vec::with_capacity(challenges.len());
    let mut batch: Vec<Program> = Vec::new();
    let mut banks = std::collections::BTreeSet::new();
    for &challenge in challenges {
        let addr = challenge.addr();
        // A bank repeat ends the schedulable batch: programs on the
        // same bank contend for the same timing window, so flush the
        // disjoint prefix first to keep every batch mergeable.
        if !banks.insert(addr.bank) {
            run_batch(mc, &mut batch, &mut out)?;
            banks.clear();
            banks.insert(addr.bank);
        }
        let ones = crate::frac::physical_pattern(mc, addr, true);
        let mut program = mc.write_row_program(addr, &ones);
        program.extend_from(&frac_program(addr, PUF_FRAC_OPS));
        program.extend_from(&mc.read_row_program(addr));
        batch.push(program);
    }
    run_batch(mc, &mut batch, &mut out)?;
    Ok(out)
}

/// Executes one bank-disjoint batch of challenge programs and extracts
/// each program's single read-out row.
fn run_batch(
    mc: &mut MemoryController,
    batch: &mut Vec<Program>,
    out: &mut Vec<BitVec>,
) -> Result<()> {
    for outcome in mc.run_scheduled(batch)? {
        out.push(BitVec::from_bools(&outcome.single_read()?));
    }
    batch.clear();
    Ok(())
}

/// Whitens raw responses for randomness testing — the paper's
/// "modified Von Neumann randomness extractor" (§VI-B2).
///
/// The modification matters: a plain Von Neumann pass over one
/// concatenated stream pairs *adjacent columns*, whose sense-amplifier
/// offsets are static and shared by every response from the same
/// sub-array, so residual pair structure survives. Instead, responses
/// are taken two at a time and the **same column of the two responses**
/// forms each Von Neumann pair: conditioned on the column's (arbitrary)
/// offset, the two cells' contributions are independent and identically
/// distributed, so `01` and `10` are exactly equally likely and every
/// emitted bit is unbiased. An odd trailing response is ignored.
pub fn whitened_stream(responses: &[BitVec]) -> BitVec {
    let mut interleaved = BitVec::new();
    for pair in responses.chunks_exact(2) {
        let n = pair[0].len().min(pair[1].len());
        for col in 0..n {
            interleaved.push(pair[0].get(col).unwrap());
            interleaved.push(pair[1].get(col).unwrap());
        }
    }
    von_neumann(&interleaved)
}

/// Authentication decision: accept when the normalized Hamming distance
/// between the enrolled and fresh response is below `threshold`
/// (a value between the maximum intra-HD and minimum inter-HD, e.g.
/// 0.15).
pub fn authenticate(enrolled: &BitVec, fresh: &BitVec, threshold: f64) -> bool {
    fracdram_stats::hamming::normalized_distance(enrolled, fresh) < threshold
}

/// Cycle cost of one PUF evaluation (§VI-B2's accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalCost {
    /// Preparation: one in-DRAM row initialization plus the Frac
    /// operations. The paper's 88 cycles = 18-cycle row init + 10 × 7;
    /// this model's row copy costs [`COPY_CYCLES`] instead of 18.
    pub prep_cycles: u64,
    /// Read-out of the row over the memory bus.
    pub readout_cycles: u64,
}

impl EvalCost {
    /// Cost model for a response of `row_bits` bits on a 64-bit DDR bus.
    ///
    /// `optimized` selects the paper's "optimized memory controller"
    /// variant, where the read-out runs at the chip's native data rate
    /// instead of the (conservative) SoftMC bus schedule.
    pub fn for_row(row_bits: usize, optimized: bool) -> Self {
        let beats = row_bits.div_ceil(64);
        let readout_cycles = if optimized {
            // Full-speed DDR: two beats per memory cycle, fully pipelined
            // column reads across bank groups.
            (beats as u64).div_ceil(2).div_ceil(2)
        } else {
            // SoftMC-style: two beats per cycle, one burst in flight.
            (beats as u64).div_ceil(2)
        };
        EvalCost {
            prep_cycles: COPY_CYCLES + (PUF_FRAC_OPS as u64) * FRAC_CYCLES,
            readout_cycles,
        }
    }

    /// Total cycles.
    pub fn total(&self) -> Cycles {
        Cycles(self.prep_cycles + self.readout_cycles)
    }

    /// Total evaluation time in microseconds (2.5 ns cycles).
    pub fn total_micros(&self) -> f64 {
        self.total().to_seconds().value() * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fracdram_model::{GroupId, Module, ModuleConfig};
    use fracdram_stats::hamming::normalized_distance;

    fn controller(group: GroupId, seed: u64) -> MemoryController {
        MemoryController::new(Module::new(ModuleConfig::single_chip(
            group,
            seed,
            Geometry::tiny(),
        )))
    }

    #[test]
    fn challenge_set_is_deterministic_and_distinct() {
        let g = Geometry::tiny();
        let a = challenge_set(&g, 20, 42);
        let b = challenge_set(&g, 20, 42);
        assert_eq!(a, b);
        let unique: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(unique.len(), 20);
        let c = challenge_set(&g, 20, 43);
        assert_ne!(a, c, "different seeds draw different sets");
    }

    #[test]
    fn same_module_reproduces_its_response() {
        let mut mc = controller(GroupId::B, 101);
        let ch = Challenge::new(0, 7);
        let r1 = evaluate(&mut mc, ch).unwrap();
        let r2 = evaluate(&mut mc, ch).unwrap();
        let intra = normalized_distance(&r1, &r2);
        assert!(intra < 0.08, "intra-HD = {intra}");
    }

    #[test]
    fn different_modules_respond_differently() {
        let ch = Challenge::new(0, 7);
        let mut mc1 = controller(GroupId::B, 101);
        let mut mc2 = controller(GroupId::B, 202);
        let r1 = evaluate(&mut mc1, ch).unwrap();
        let r2 = evaluate(&mut mc2, ch).unwrap();
        let inter = normalized_distance(&r1, &r2);
        assert!(inter > 0.2, "inter-HD = {inter}");
    }

    #[test]
    fn different_challenges_give_different_responses() {
        let mut mc = controller(GroupId::B, 101);
        let r1 = evaluate(&mut mc, Challenge::new(0, 3)).unwrap();
        let r2 = evaluate(&mut mc, Challenge::new(1, 40)).unwrap();
        assert!(normalized_distance(&r1, &r2) > 0.1);
    }

    #[test]
    fn response_is_biased_but_not_constant() {
        // Group A's offsets skew most columns toward zero (the paper
        // measures Hamming weight 0.21 there).
        let mut mc = controller(GroupId::A, 33);
        let r = evaluate(&mut mc, Challenge::new(0, 12)).unwrap();
        let hw = r.hamming_weight();
        assert!(hw > 0.0 && hw < 0.5, "group A Hamming weight = {hw}");
    }

    #[test]
    fn authentication_accepts_self_rejects_other() {
        let ch = Challenge::new(1, 5);
        let mut mc1 = controller(GroupId::B, 7);
        let mut mc2 = controller(GroupId::B, 8);
        let enrolled = evaluate(&mut mc1, ch).unwrap();
        let fresh = evaluate(&mut mc1, ch).unwrap();
        let imposter = evaluate(&mut mc2, ch).unwrap();
        assert!(authenticate(&enrolled, &fresh, 0.15));
        assert!(!authenticate(&enrolled, &imposter, 0.15));
    }

    #[test]
    fn guarded_group_cannot_run_the_puf() {
        let mut mc = controller(GroupId::K, 9);
        assert!(evaluate(&mut mc, Challenge::new(0, 0)).is_err());
    }

    #[test]
    fn evaluate_set_matches_per_challenge_loop() {
        // Geometry::tiny() has 2 banks, so a mixed challenge set forms
        // bank-disjoint pairs the scheduler can merge.
        let challenges = [
            Challenge::new(0, 1),
            Challenge::new(1, 2),
            Challenge::new(0, 3),
            Challenge::new(1, 4),
            Challenge::new(1, 5),
        ];
        let mut looped = controller(GroupId::B, 21);
        let expected: Vec<BitVec> = challenges
            .iter()
            .map(|&c| evaluate(&mut looped, c).unwrap())
            .collect();

        let mut batched = controller(GroupId::B, 21);
        let got = evaluate_set(&mut batched, &challenges).unwrap();
        assert_eq!(got, expected, "batched responses must be byte-identical");
        assert_eq!(batched.clock(), looped.clock());
        let perf = batched.model_perf();
        assert!(perf.sched_merges >= 2, "disjoint pairs merged: {perf:?}");
        assert!(perf.sched_overlapped_ticks > 0);

        // Scheduling disabled: same bytes, untouched counters.
        let mut plain = controller(GroupId::B, 21);
        plain.set_sched(false);
        assert_eq!(evaluate_set(&mut plain, &challenges).unwrap(), expected);
        assert_eq!(plain.model_perf().sched_merges, 0);
        assert_eq!(plain.model_perf().sched_fallbacks, 0);
    }

    #[test]
    fn whitening_balances_a_biased_stream() {
        let mut mc = controller(GroupId::A, 33);
        let challenges = challenge_set(mc.module().geometry(), 8, 5);
        let responses = evaluate_set(&mut mc, &challenges).unwrap();
        let white = whitened_stream(&responses);
        assert!(!white.is_empty());
        let hw = white.hamming_weight();
        assert!((hw - 0.5).abs() < 0.1, "whitened weight = {hw}");
    }

    #[test]
    fn eval_cost_matches_paper_scale() {
        // 8 KB row: the paper reports ~1.5 us conservative, ~0.7 us
        // optimized, with read-out dominating.
        let cost = EvalCost::for_row(65_536, false);
        assert!(cost.readout_cycles > cost.prep_cycles);
        let us = cost.total_micros();
        assert!((1.0..2.2).contains(&us), "conservative = {us} us");
        let fast = EvalCost::for_row(65_536, true);
        assert!(fast.total_micros() < us);
        assert!((0.4..1.0).contains(&fast.total_micros()));
    }
}
