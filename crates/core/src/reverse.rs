//! Reverse-engineering DRAM parameters with fractional values (§VI-C).
//!
//! *"Finally, it can be used in reverse-engineering DRAM designs and
//! parameters, such as the sense amplifier threshold."*
//!
//! The idea: each Frac operation moves a cell a known fraction closer
//! to `Vdd/2`, so the sequence *initialize to a rail, apply `n` Frac
//! operations, read* probes the column's decision threshold against a
//! ladder of known voltage levels. The largest `n` at which the column
//! still reads its initial value brackets the threshold between two
//! ladder rungs. Doing this from **both** rails brackets thresholds on
//! both sides of `Vdd/2` and measures each column's offset polarity.
//!
//! On real silicon the ladder comes from circuit analysis (the
//! bit-line-to-cell capacitance ratio); here the same nominal ladder is
//! used and validated against the simulator's ground truth.

use fracdram_model::{RowAddr, Volts};
use fracdram_softmc::MemoryController;

use crate::error::Result;
use crate::frac::{frac_program, physical_pattern, require_frac_support};

/// The nominal cell-voltage ladder: the expected level after `n` Frac
/// operations starting from physical `Vdd` (mirror around `Vdd/2` for
/// the ground-initialized ladder).
///
/// `v(n) = Vdd/2 + (Vdd/2) · r^n` with per-operation retention factor
/// `r = 1 − settle · Cb/(Cb + Cc)`.
pub fn ladder_level(vdd: f64, settle: f64, cap_ratio: f64, n: usize) -> f64 {
    let r = 1.0 - settle * cap_ratio;
    vdd / 2.0 + (vdd / 2.0) * r.powi(n as i32)
}

/// One column's reverse-engineered threshold bracket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdEstimate {
    /// Lower bound of the effective threshold (volts).
    pub lo: Volts,
    /// Upper bound (volts).
    pub hi: Volts,
}

impl ThresholdEstimate {
    /// Midpoint of the bracket.
    pub fn midpoint(&self) -> Volts {
        Volts((self.lo.value() + self.hi.value()) / 2.0)
    }

    /// Bracket width.
    pub fn width(&self) -> f64 {
        self.hi.value() - self.lo.value()
    }

    /// Offset of the midpoint from the ideal `Vdd/2` threshold, in
    /// **cell-referred** volts.
    ///
    /// The scan compares cell voltages against the sense decision, so a
    /// bit-line-referred amplifier offset appears amplified by the
    /// inverse of the charge-sharing ratio `Cb/(Cb+Cc)` (≈ 6× for the
    /// default geometry), and mirrored in sign on anti-cell columns.
    pub fn offset_from(&self, half_vdd: f64) -> f64 {
        self.midpoint().value() - half_vdd
    }

    /// The bit-line-referred amplifier offset implied by the bracket:
    /// the cell-referred offset scaled back down by the charge-sharing
    /// ratio (still polarity-mirrored on anti-cell columns).
    pub fn bitline_referred_offset(&self, half_vdd: f64, cap_ratio: f64) -> f64 {
        self.offset_from(half_vdd) * cap_ratio
    }
}

/// Reverse-engineers the effective read threshold of every column of
/// `row`, probing the Frac ladder from both rails with up to `max_ops`
/// operations per rung.
///
/// A column whose threshold sits above `Vdd/2` stops reading one after
/// few descending rungs; one below `Vdd/2` stops reading zero after few
/// ascending rungs. The two scans together bracket the threshold.
///
/// # Errors
///
/// Returns [`crate::FracDramError::Unsupported`] on groups without
/// Frac, and propagates controller errors.
pub fn estimate_thresholds(
    mc: &mut MemoryController,
    row: RowAddr,
    max_ops: usize,
) -> Result<Vec<ThresholdEstimate>> {
    require_frac_support(mc)?;
    let width = mc.module().row_bits();
    let vdd = mc.module().environment().vdd.value();
    let params = mc.module().chips()[0].silicon().params().clone();
    let cap_ratio =
        params.bitline_cap.value() / (params.bitline_cap.value() + params.cell_cap.value());
    let settle = params.interrupted_settle;
    let level = |n: usize| ladder_level(vdd, settle, cap_ratio, n);

    // last_one[col]: largest n (descending ladder from Vdd) at which the
    // column still reads its stored physical one; None if it never does.
    let scan = |mc: &mut MemoryController, from_ones: bool| -> Result<Vec<Option<usize>>> {
        let pattern = physical_pattern(mc, row, from_ones);
        let mut last_ok: Vec<Option<usize>> = vec![None; width];
        for n in 0..=max_ops {
            mc.write_row(row, &pattern)?;
            if n > 0 {
                mc.run(&frac_program(row, n))?;
            }
            let read = mc.read_row(row)?;
            for col in 0..width {
                if read[col] == pattern[col] {
                    last_ok[col] = Some(n);
                }
            }
        }
        Ok(last_ok)
    };
    let from_above = scan(mc, true)?; // ladder v(n) descending toward Vdd/2
    let from_below = scan(mc, false)?; // mirrored ladder ascending

    let half = vdd / 2.0;
    let estimates = (0..width)
        .map(|col| {
            // Threshold below v(last_ok) and above v(last_ok + 1) when
            // the column eventually flips; the mirrored scan bounds the
            // other side.
            let (mut lo, mut hi) = (0.0f64, vdd);
            match from_above[col] {
                Some(n) if n < max_ops => {
                    // Reads one at v(n), zero at v(n+1): th in (v(n+1), v(n)).
                    hi = hi.min(level(n));
                    lo = lo.max(level(n + 1));
                }
                Some(_) => hi = hi.min(level(max_ops)), // never flipped: th below the last rung
                None => lo = lo.max(level(0)),          // flipped immediately (unusual)
            }
            match from_below[col] {
                Some(n) if n < max_ops => {
                    // Mirrored ladder: reads zero at 2·half − v(n).
                    lo = lo.max(2.0 * half - level(n));
                    hi = hi.min(2.0 * half - level(n + 1));
                }
                Some(_) => lo = lo.max(2.0 * half - level(max_ops)),
                None => hi = hi.min(2.0 * half - level(0)),
            }
            if lo > hi {
                // Inconsistent scans (noise at a rung boundary): collapse
                // to the crossing point.
                let mid = (lo + hi) / 2.0;
                ThresholdEstimate {
                    lo: Volts(mid),
                    hi: Volts(mid),
                }
            } else {
                ThresholdEstimate {
                    lo: Volts(lo),
                    hi: Volts(hi),
                }
            }
        })
        .collect();
    Ok(estimates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fracdram_model::{Geometry, GroupId, Module, ModuleConfig};

    fn controller() -> MemoryController {
        MemoryController::new(Module::new(ModuleConfig::single_chip(
            GroupId::B,
            29,
            Geometry::tiny(),
        )))
    }

    #[test]
    fn ladder_is_monotone_decreasing_toward_half_vdd() {
        let mut prev = f64::INFINITY;
        for n in 0..12 {
            let v = ladder_level(1.5, 0.8, 0.8, n);
            assert!(v < prev);
            assert!(v > 0.75);
            prev = v;
        }
        assert!(ladder_level(1.5, 0.8, 0.8, 12) - 0.75 < 1e-3);
    }

    #[test]
    fn brackets_are_consistent_and_within_the_rails() {
        let mut mc = controller();
        let estimates = estimate_thresholds(&mut mc, RowAddr::new(0, 6), 8).unwrap();
        assert_eq!(estimates.len(), 64);
        let mut near = 0;
        for e in &estimates {
            assert!(e.lo.value() <= e.hi.value());
            let mid = e.midpoint().value();
            assert!((0.0..=1.5).contains(&mid), "midpoint {mid} outside rails");
            // Cell-referred offsets are ~6x the bit-line offsets, so most
            // land within a few hundred mV of Vdd/2.
            if (mid - 0.75).abs() < 0.40 {
                near += 1;
            }
        }
        assert!(near * 2 > estimates.len(), "only {near}/64 near Vdd/2");
    }

    #[test]
    fn estimates_track_the_true_offsets() {
        let mut mc = controller();
        let row = RowAddr::new(0, 6);
        let estimates = estimate_thresholds(&mut mc, row, 10).unwrap();
        // Ground truth: offsets of sub-array 0, bank 0 (simulation-only
        // oracle, exactly what the paper cannot see — the point of the
        // reverse-engineering method is to recover it from outside).
        // Anti-cell columns see the mirrored threshold, so the expected
        // cell-referred offset flips sign there.
        let truths: Vec<f64> = (0..64)
            .map(|col| {
                let offset = mc.module().chips()[0]
                    .silicon()
                    .sense_offset(0, 0, col)
                    .value();
                let anti = mc.module_mut().chip_mut(0).is_anti_column(0, 0, col);
                if anti {
                    -offset
                } else {
                    offset
                }
            })
            .collect();
        let mids: Vec<f64> = estimates.iter().map(|e| e.offset_from(0.75)).collect();
        // Pearson correlation between estimated and true offsets.
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (mt, me) = (mean(&truths), mean(&mids));
        let cov: f64 = truths
            .iter()
            .zip(&mids)
            .map(|(t, e)| (t - mt) * (e - me))
            .sum();
        let vt: f64 = truths.iter().map(|t| (t - mt) * (t - mt)).sum();
        let ve: f64 = mids.iter().map(|e| (e - me) * (e - me)).sum();
        let r = cov / (vt * ve).sqrt();
        assert!(r > 0.6, "correlation with ground truth = {r}");
    }

    #[test]
    fn rejected_on_guarded_groups() {
        let mut mc = MemoryController::new(Module::new(ModuleConfig::single_chip(
            GroupId::L,
            29,
            Geometry::tiny(),
        )));
        assert!(estimate_thresholds(&mut mc, RowAddr::new(0, 0), 4).is_err());
    }
}
