//! High-level session facade with fractional-state bookkeeping.
//!
//! [`FracDram`] wraps a [`MemoryController`] and tracks which rows
//! currently hold fractional values so the §III-C refresh rule can be
//! enforced: *"whenever we have a fractional value stored in the DRAM
//! array, we need to prevent the issuing of the REFRESH command to rows
//! holding that fractional value"*. Refreshing through this facade
//! fails fast while fractional rows exist (unless explicitly forced),
//! and any operation that re-senses a fractional row clears its marker
//! — fractional values are destroyed by any row activation.
//!
//! [`TrialRunner`] is the repeated-trial harness: the paper's stability
//! and coverage measurements run the same operand-write prefix thousands
//! of times per cell, which the controller serves from its write-prefix
//! snapshot cache; the runner scopes those trials and reports how much
//! of the prefix work was restored rather than replayed.

use std::collections::BTreeSet;

use fracdram_model::{Cycles, Geometry, GroupId, ModelPerf, Module, RowAddr, Seconds};
use fracdram_softmc::MemoryController;
use fracdram_stats::bits::BitVec;

use crate::error::{FracDramError, Result};
use crate::fmaj::{fmaj, FmajConfig};
use crate::frac::frac_program;
use crate::maj3;
use crate::puf::{self, Challenge};
use crate::rowsets::{Quad, Triplet};

/// The refresh window of DDR3: a row must be refreshed every 64 ms.
/// Applications holding fractional state must complete within it.
pub const REFRESH_WINDOW: Seconds = Seconds(0.064);

/// A FracDRAM session: a memory controller plus fractional-row
/// bookkeeping.
#[derive(Debug)]
pub struct FracDram {
    mc: MemoryController,
    fractional: BTreeSet<(usize, usize)>,
    /// Clock value when the oldest still-tracked fractional value was
    /// created.
    oldest_fractional_at: Option<u64>,
}

impl FracDram {
    /// Takes control of a module.
    pub fn new(module: Module) -> Self {
        FracDram {
            mc: MemoryController::new(module),
            fractional: BTreeSet::new(),
            oldest_fractional_at: None,
        }
    }

    /// The module's DRAM group.
    pub fn group(&self) -> GroupId {
        self.mc.module().profile().group
    }

    /// The module geometry.
    pub fn geometry(&self) -> Geometry {
        *self.mc.module().geometry()
    }

    /// Borrows the underlying controller (programs, traces, stats).
    pub fn controller(&self) -> &MemoryController {
        &self.mc
    }

    /// Mutable access to the underlying controller.
    ///
    /// Out-of-band commands issued here bypass the fractional-row
    /// bookkeeping; prefer the typed methods.
    pub fn controller_mut(&mut self) -> &mut MemoryController {
        &mut self.mc
    }

    /// Releases the module.
    pub fn into_module(self) -> Module {
        self.mc.into_module()
    }

    /// Arms deterministic fault injection on every chip in the module
    /// ([`fracdram_model::FaultConfig`]). Pass
    /// [`fracdram_model::FaultConfig::none`] to disarm.
    pub fn inject_faults(&mut self, config: &fracdram_model::FaultConfig) {
        self.mc.module_mut().set_fault_config(config);
    }

    /// Total injected-fault events observed so far (all classes:
    /// sense flips, stuck-cell pins, decoder dropouts, excursion
    /// commands). Zero while injection is disarmed.
    pub fn fault_events(&self) -> u64 {
        self.mc.model_perf().fault_events()
    }

    /// Rows currently tracked as holding fractional values.
    pub fn fractional_rows(&self) -> Vec<RowAddr> {
        self.fractional
            .iter()
            .map(|&(bank, row)| RowAddr::new(bank, row))
            .collect()
    }

    /// Time elapsed since the oldest tracked fractional value was
    /// created — compare against [`REFRESH_WINDOW`].
    pub fn fractional_age(&self) -> Option<Seconds> {
        self.oldest_fractional_at
            .map(|t| Cycles(self.mc.clock().saturating_sub(t)).to_seconds())
    }

    /// Whether the oldest fractional value has outlived the 64 ms
    /// refresh window (the application budget of §III-C).
    pub fn fractional_overdue(&self) -> bool {
        self.fractional_age()
            .is_some_and(|age| age.value() > REFRESH_WINDOW.value())
    }

    fn mark_fractional(&mut self, row: RowAddr) {
        if self.fractional.insert((row.bank, row.row)) && self.oldest_fractional_at.is_none() {
            self.oldest_fractional_at = Some(self.mc.clock());
        }
    }

    fn clear_fractional(&mut self, row: RowAddr) {
        self.fractional.remove(&(row.bank, row.row));
        if self.fractional.is_empty() {
            self.oldest_fractional_at = None;
        }
    }

    // ------------------------------------------------------------------
    // Data plane
    // ------------------------------------------------------------------

    /// Writes a full row (legal timing). Clears the row's fractional
    /// marker: a write re-senses and overwrites the cells.
    ///
    /// # Errors
    ///
    /// Propagates controller errors.
    pub fn write_row(&mut self, row: RowAddr, bits: &[bool]) -> Result<()> {
        self.mc.write_row(row, bits)?;
        self.clear_fractional(row);
        Ok(())
    }

    /// Reads a full row (legal timing). Reading a fractional row
    /// resolves and destroys its state, so the marker is cleared.
    ///
    /// # Errors
    ///
    /// Propagates controller errors.
    pub fn read_row(&mut self, row: RowAddr) -> Result<Vec<bool>> {
        let bits = self.mc.read_row(row)?;
        self.clear_fractional(row);
        Ok(bits)
    }

    /// Reads a full row into a caller-provided buffer (resized to the
    /// row width) — the allocation-free variant of
    /// [`FracDram::read_row`] for trial hot loops feeding a
    /// [`RowArena`]. Clears the row's fractional marker like any other
    /// read.
    ///
    /// # Errors
    ///
    /// Propagates controller errors.
    pub fn read_row_into(&mut self, row: RowAddr, out: &mut Vec<bool>) -> Result<()> {
        self.mc.read_row_into(row, out)?;
        self.clear_fractional(row);
        Ok(())
    }

    /// Refreshes every bank, but only when no fractional state would be
    /// destroyed.
    ///
    /// # Errors
    ///
    /// Returns [`FracDramError::RefreshWouldDestroyFractional`] while
    /// fractional rows exist; use [`FracDram::refresh_forced`] to
    /// override.
    pub fn refresh(&mut self) -> Result<()> {
        if !self.fractional.is_empty() {
            return Err(FracDramError::RefreshWouldDestroyFractional {
                rows: self.fractional.len(),
            });
        }
        self.mc.refresh_all()?;
        Ok(())
    }

    /// Refreshes every bank unconditionally, destroying all fractional
    /// values (their markers are cleared).
    ///
    /// # Errors
    ///
    /// Propagates controller errors.
    pub fn refresh_forced(&mut self) -> Result<()> {
        self.mc.refresh_all()?;
        self.fractional.clear();
        self.oldest_fractional_at = None;
        Ok(())
    }

    // ------------------------------------------------------------------
    // FracDRAM primitives
    // ------------------------------------------------------------------

    /// Issues `count` Frac operations on `row` and marks it fractional.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::frac::frac`].
    pub fn frac(&mut self, row: RowAddr, count: usize) -> Result<()> {
        crate::frac::require_frac_support(&self.mc)?;
        self.mc.run(&frac_program(row, count))?;
        self.mark_fractional(row);
        Ok(())
    }

    /// Initializes a row and issues Frac operations
    /// ([`crate::frac::store_fractional`]), marking it fractional.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::frac::store_fractional`].
    pub fn store_fractional(&mut self, row: RowAddr, init_ones: bool, count: usize) -> Result<()> {
        crate::frac::store_fractional(&mut self.mc, row, init_ones, count)?;
        self.mark_fractional(row);
        Ok(())
    }

    /// In-memory majority-of-three on a triplet
    /// ([`crate::maj3::maj3`]); the triplet rows are clobbered with the
    /// result.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::maj3::maj3`].
    pub fn maj3(&mut self, triplet: &Triplet, operands: [&[bool]; 3]) -> Result<Vec<bool>> {
        let result = maj3::maj3(&mut self.mc, triplet, operands)?;
        let geometry = self.geometry();
        for row in triplet.rows(&geometry) {
            self.clear_fractional(row);
        }
        Ok(result)
    }

    /// F-MAJ on a quad ([`crate::fmaj::fmaj`]): majority-of-three via
    /// four-row activation with a fractional helper row. All four rows
    /// end holding the (sensed, full-rail) result.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::fmaj::fmaj`].
    pub fn fmaj(
        &mut self,
        quad: &Quad,
        config: &FmajConfig,
        operands: [&[bool]; 3],
    ) -> Result<Vec<bool>> {
        let result = fmaj(&mut self.mc, quad, config, operands)?;
        let geometry = self.geometry();
        for row in quad.rows(&geometry) {
            self.clear_fractional(row);
        }
        Ok(result)
    }

    /// Half-m with a column mask ([`crate::halfm::halfm_masked`]); the
    /// quad rows are marked fractional.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::halfm::halfm_masked`].
    pub fn halfm_masked(&mut self, quad: &Quad, data: &[bool], mask: &[bool]) -> Result<()> {
        crate::halfm::halfm_masked(&mut self.mc, quad, data, mask)?;
        let geometry = self.geometry();
        for row in quad.rows(&geometry) {
            self.mark_fractional(row);
        }
        Ok(())
    }

    /// Evaluates the Frac-PUF on a challenge ([`crate::puf::evaluate`]).
    /// The read-out destroys the fractional state, so nothing stays
    /// marked.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::puf::evaluate`].
    pub fn puf_response(&mut self, challenge: Challenge) -> Result<BitVec> {
        puf::evaluate(&mut self.mc, challenge)
    }
}

impl From<Module> for FracDram {
    fn from(module: Module) -> Self {
        FracDram::new(module)
    }
}

/// Write-prefix cache activity within one [`TrialRunner`] scope.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixStats {
    /// Full-row writes served by restoring a snapshot.
    pub hits: u64,
    /// Full-row writes that replayed live and (re)captured.
    pub misses: u64,
    /// Bytes captured by the misses.
    pub bytes: u64,
}

/// A pool of reusable full-width row buffers for trial hot loops.
///
/// Measurement bodies take buffers at the top of a trial and give them
/// (or buffers produced by the trial, like a consumed read-back row)
/// back at the bottom; after the first trial warms the pool, takes stop
/// allocating. Purely an allocation amortizer — buffer contents carry
/// nothing between trials (every take returns a zeroed row).
#[derive(Debug)]
pub struct RowArena {
    width: usize,
    free: Vec<Vec<bool>>,
}

/// Upper bound on pooled buffers; `give` beyond this drops the buffer
/// so a body returning more rows than it takes cannot grow the pool
/// unboundedly.
const ARENA_CAP: usize = 8;

impl RowArena {
    /// An empty pool of `width`-column row buffers.
    pub fn new(width: usize) -> RowArena {
        RowArena {
            width,
            free: Vec::new(),
        }
    }

    /// A zeroed row buffer — pooled when available, freshly allocated
    /// otherwise.
    pub fn take(&mut self) -> Vec<bool> {
        match self.free.pop() {
            Some(mut row) => {
                row.clear();
                row.resize(self.width, false);
                row
            }
            None => vec![false; self.width],
        }
    }

    /// Returns a buffer to the pool for a later [`RowArena::take`].
    /// Accepts rows of any length (they are re-sized on take) and drops
    /// the buffer once the pool holds [`ARENA_CAP`] rows.
    pub fn give(&mut self, row: Vec<bool>) {
        if self.free.len() < ARENA_CAP {
            self.free.push(row);
        }
    }
}

/// Scopes a repeated-trial measurement over one controller.
///
/// Each trial re-runs a shared init/write prefix (operand rows,
/// patterns) before the one command sequence that varies; the
/// controller executes that prefix once per (bank, row, environment),
/// snapshots the sub-array state it leaves, and restores per trial.
/// The runner itself only sequences the trials and deltas the snapshot
/// counters, so a body observes exactly the controller it would have
/// been handed in a hand-written loop. Restores are exact by
/// construction: temporal noise is keyed by each event's absolute fire
/// time and coordinates, never by draw order, so a restored trial sees
/// the same noise a live replay would.
#[derive(Debug)]
pub struct TrialRunner<'a> {
    mc: &'a mut MemoryController,
    baseline: ModelPerf,
}

impl<'a> TrialRunner<'a> {
    /// Starts a trial scope on `mc`.
    pub fn new(mc: &'a mut MemoryController) -> Self {
        let baseline = mc.model_perf();
        TrialRunner { mc, baseline }
    }

    /// Runs `trials` invocations of `body`, collecting the results in
    /// trial order.
    pub fn run<T>(
        &mut self,
        trials: usize,
        mut body: impl FnMut(&mut MemoryController, usize) -> T,
    ) -> Vec<T> {
        (0..trials).map(|i| body(self.mc, i)).collect()
    }

    /// Like [`TrialRunner::run`], but leases a [`RowArena`] sized to the
    /// module row to the body so trial hot loops recycle their row
    /// buffers instead of allocating per trial. The arena persists
    /// across all trials of the scope.
    pub fn run_arena<T>(
        &mut self,
        trials: usize,
        mut body: impl FnMut(&mut MemoryController, &mut RowArena, usize) -> T,
    ) -> Vec<T> {
        let mut arena = RowArena::new(self.mc.module().row_bits());
        (0..trials).map(|i| body(self.mc, &mut arena, i)).collect()
    }

    /// The controller under measurement.
    pub fn controller(&mut self) -> &mut MemoryController {
        self.mc
    }

    /// Snapshot-cache activity since the scope opened.
    pub fn prefix_stats(&self) -> PrefixStats {
        let now = self.mc.model_perf();
        PrefixStats {
            hits: now.snapshot_hits - self.baseline.snapshot_hits,
            misses: now.snapshot_misses - self.baseline.snapshot_misses,
            bytes: now.snapshot_bytes - self.baseline.snapshot_bytes,
        }
    }

    /// Injected-fault events observed since the scope opened — lets a
    /// measurement attribute instability to the fault plan rather than
    /// process variation.
    pub fn fault_events(&self) -> u64 {
        self.mc.model_perf().fault_events() - self.baseline.fault_events()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fracdram_model::{Geometry, ModuleConfig, SubarrayAddr};

    fn session() -> FracDram {
        FracDram::new(Module::new(ModuleConfig::single_chip(
            GroupId::B,
            83,
            Geometry::tiny(),
        )))
    }

    #[test]
    fn refresh_guard_blocks_then_allows() {
        let mut s = session();
        let row = RowAddr::new(0, 6);
        s.store_fractional(row, true, 3).unwrap();
        assert_eq!(s.fractional_rows(), vec![row]);
        let err = s.refresh().unwrap_err();
        assert!(matches!(
            err,
            FracDramError::RefreshWouldDestroyFractional { rows: 1 }
        ));
        // Reading the row destroys (and unmarks) the fractional state.
        s.read_row(row).unwrap();
        assert!(s.fractional_rows().is_empty());
        s.refresh().unwrap();
    }

    #[test]
    fn read_row_into_matches_read_row_and_clears_marker() {
        let mut s = session();
        let mut t = session();
        let row = RowAddr::new(0, 6);
        s.store_fractional(row, true, 3).unwrap();
        t.store_fractional(row, true, 3).unwrap();
        let owned = s.read_row(row).unwrap();
        let mut borrowed = Vec::new();
        t.read_row_into(row, &mut borrowed).unwrap();
        assert_eq!(owned, borrowed);
        assert!(t.fractional_rows().is_empty());
        t.refresh().unwrap();
    }

    #[test]
    fn forced_refresh_clears_markers() {
        let mut s = session();
        s.store_fractional(RowAddr::new(0, 6), true, 2).unwrap();
        s.store_fractional(RowAddr::new(1, 9), false, 2).unwrap();
        assert_eq!(s.fractional_rows().len(), 2);
        s.refresh_forced().unwrap();
        assert!(s.fractional_rows().is_empty());
        assert!(s.fractional_age().is_none());
    }

    #[test]
    fn fractional_age_tracks_oldest() {
        let mut s = session();
        s.store_fractional(RowAddr::new(0, 3), true, 1).unwrap();
        assert!(!s.fractional_overdue());
        s.controller_mut().wait_seconds(Seconds(0.1));
        assert!(s.fractional_overdue(), "0.1 s > 64 ms window");
        let age = s.fractional_age().unwrap();
        assert!(age.value() > 0.09);
    }

    #[test]
    fn write_clears_marker() {
        let mut s = session();
        let row = RowAddr::new(0, 4);
        s.store_fractional(row, true, 2).unwrap();
        s.write_row(row, &[true; 64]).unwrap();
        assert!(s.fractional_rows().is_empty());
    }

    #[test]
    fn maj3_clears_triplet_markers() {
        let mut s = session();
        let t = Triplet::first(&s.geometry(), SubarrayAddr::new(0, 0));
        let geometry = s.geometry();
        s.store_fractional(t.rows(&geometry)[0], true, 2).unwrap();
        let ones = vec![true; 64];
        let zeros = vec![false; 64];
        s.maj3(&t, [&ones, &ones, &zeros]).unwrap();
        assert!(s.fractional_rows().is_empty());
    }

    #[test]
    fn halfm_marks_all_quad_rows() {
        let mut s = session();
        let q = Quad::canonical(&s.geometry(), SubarrayAddr::new(0, 0), GroupId::B).unwrap();
        s.halfm_masked(&q, &[false; 64], &[true; 64]).unwrap();
        assert_eq!(s.fractional_rows().len(), 4);
    }

    #[test]
    fn puf_leaves_no_fractional_state() {
        let mut s = session();
        let r = s.puf_response(Challenge::new(0, 11)).unwrap();
        assert_eq!(r.len(), 64);
        assert!(s.fractional_rows().is_empty());
        s.refresh().unwrap();
    }

    #[test]
    fn trial_runner_reports_prefix_hits() {
        let mut mc = MemoryController::new(Module::new(ModuleConfig::single_chip(
            GroupId::B,
            1,
            Geometry::tiny(),
        )));
        let row = RowAddr::new(0, 2);
        let mut runner = TrialRunner::new(&mut mc);
        let reads = runner.run(5, |mc, i| {
            let pattern = vec![i % 2 == 0; 64];
            mc.write_row(row, &pattern).unwrap();
            mc.read_row(row).unwrap()
        });
        assert_eq!(reads.len(), 5);
        for (i, bits) in reads.iter().enumerate() {
            assert_eq!(bits, &vec![i % 2 == 0; 64]);
        }
        let stats = runner.prefix_stats();
        assert_eq!(stats.misses, 1, "one live capture");
        assert_eq!(stats.hits, 4, "remaining trials restored");
        assert!(stats.bytes > 0);
    }

    #[test]
    fn session_surfaces_fault_events() {
        let mut s = session();
        assert_eq!(s.fault_events(), 0, "injection disarmed by default");
        s.inject_faults(&fracdram_model::FaultConfig {
            stuck_density: 0.05,
            ..fracdram_model::FaultConfig::none()
        });
        let row = RowAddr::new(0, 2);
        s.write_row(row, &[true; 64]).unwrap();
        s.read_row(row).unwrap();
        assert!(s.fault_events() > 0, "stuck cells pin on every event");
        // A trial scope deltas the counter from its own baseline.
        let before = s.fault_events();
        let mut runner = TrialRunner::new(s.controller_mut());
        runner.run(2, |mc, _| {
            mc.write_row(row, &[false; 64]).unwrap();
            mc.read_row(row).unwrap()
        });
        let scoped = runner.fault_events();
        assert!(scoped > 0);
        assert_eq!(s.fault_events(), before + scoped);
    }

    #[test]
    fn session_from_module() {
        let m = Module::new(ModuleConfig::single_chip(GroupId::C, 1, Geometry::tiny()));
        let s = FracDram::from(m);
        assert_eq!(s.group(), GroupId::C);
    }
}
