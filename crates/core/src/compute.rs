//! A ComputeDRAM-style in-memory compute engine with reserved rows.
//!
//! The paper's overhead accounting (§VI-A1) assumes "the same strategy
//! as ComputeDRAM, which exclusively uses reserved rows for
//! computation: we need to copy the operands to the reserved locations
//! and copy the result back as well". This module is that strategy,
//! packaged: each sub-array donates its activation set (triplet or
//! quad) as reserved *compute* rows, operands live anywhere else in the
//! sub-array and move with in-DRAM row copies, and the majority
//! implementation is chosen per module capability — native MAJ3 on
//! group B, F-MAJ everywhere four rows open.
//!
//! Since `MAJ(a, b, 0) = AND(a, b)` and `MAJ(a, b, 1) = OR(a, b)`, the
//! engine exposes bulk bitwise AND/OR over full DRAM rows, plus the raw
//! majority. Every operation reports its exact cycle cost, so the 29 %
//! F-MAJ-vs-MAJ3 figure can be re-derived from live measurements.

use fracdram_model::{Cycles, Geometry, RowAddr, SubarrayAddr};
use fracdram_softmc::MemoryController;

use crate::error::{FracDramError, Result};
use crate::fmaj::{self, FmajConfig};
use crate::frac::frac_program;
use crate::maj3;
use crate::rowcopy::copy_row;
use crate::rowsets::{Quad, Triplet};

/// Which in-memory majority implementation a module uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MajorityKind {
    /// Native three-row MAJ3 (ComputeDRAM; group B).
    Native3,
    /// F-MAJ: four-row activation with a fractional helper row
    /// (groups C/D — and optionally B, where it is *more* reliable).
    FracAssisted4,
}

/// One executed operation's outcome: the result location and the cycle
/// bill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpReceipt {
    /// Row the result was copied to.
    pub result: RowAddr,
    /// Total memory cycles the operation occupied the command bus.
    pub cycles: Cycles,
    /// Majority implementation used.
    pub kind: MajorityKind,
}

/// An in-memory compute engine bound to one sub-array of a module.
#[derive(Debug)]
pub struct ComputeEngine {
    subarray: SubarrayAddr,
    kind: MajorityKind,
    triplet: Triplet,
    quad: Option<Quad>,
    fmaj_config: FmajConfig,
    /// Local rows reserved for computation (excluded from operand use).
    reserved: Vec<usize>,
}

impl ComputeEngine {
    /// Binds an engine to `subarray`, choosing the best majority
    /// implementation the module supports. On group B this defaults to
    /// F-MAJ (higher coverage than the native MAJ3, per §VI-A2); pass
    /// `prefer_native = true` to use the ComputeDRAM baseline instead.
    ///
    /// # Errors
    ///
    /// Returns [`FracDramError::Unsupported`] when the module can open
    /// neither three nor four rows.
    pub fn bind(
        mc: &MemoryController,
        subarray: SubarrayAddr,
        prefer_native: bool,
    ) -> Result<Self> {
        let profile = mc.module().profile();
        let geometry: Geometry = *mc.module().geometry();
        let triplet = Triplet::first(&geometry, subarray);
        let group = profile.group;
        let (kind, quad) =
            if profile.supports_four_row() && !(prefer_native && profile.supports_three_row()) {
                (
                    MajorityKind::FracAssisted4,
                    Some(Quad::canonical(&geometry, subarray, group)?),
                )
            } else if profile.supports_three_row() {
                (MajorityKind::Native3, None)
            } else {
                return Err(FracDramError::Unsupported {
                    group,
                    operation: "in-memory majority (needs three- or four-row activation)",
                });
            };
        let mut reserved: Vec<usize> = triplet
            .rows(&geometry)
            .iter()
            .map(|r| r.row % geometry.rows_per_subarray)
            .collect();
        if let Some(q) = &quad {
            reserved.extend(q.local_roles());
        }
        reserved.sort_unstable();
        reserved.dedup();
        Ok(ComputeEngine {
            subarray,
            kind,
            triplet,
            quad,
            fmaj_config: FmajConfig::best_for(group),
            reserved,
        })
    }

    /// The majority implementation in use.
    pub fn kind(&self) -> MajorityKind {
        self.kind
    }

    /// Local rows the engine reserves; operands and results must live
    /// elsewhere in the sub-array.
    pub fn reserved_rows(&self) -> &[usize] {
        &self.reserved
    }

    /// Whether `row` (bank-level) is usable as an operand/result slot.
    pub fn is_operand_row(&self, geometry: &Geometry, row: RowAddr) -> bool {
        if row.bank != self.subarray.bank {
            return false;
        }
        let (sub, local) = geometry.split_row(row.row);
        sub == self.subarray.subarray && !self.reserved.contains(&local)
    }

    fn check_operand(&self, geometry: &Geometry, row: RowAddr) -> Result<()> {
        if self.is_operand_row(geometry, row) {
            Ok(())
        } else {
            Err(FracDramError::BadRowSet {
                reason: format!("{row} is reserved or outside the engine's sub-array"),
            })
        }
    }

    /// In-memory majority of three operand rows, result copied to
    /// `dst`: copies operands into the reserved rows, triggers the
    /// majority, copies the result out. Every row involved must be an
    /// operand row of this engine's sub-array.
    ///
    /// # Errors
    ///
    /// Returns [`FracDramError::BadRowSet`] for reserved/foreign rows
    /// and propagates controller errors.
    pub fn majority(
        &self,
        mc: &mut MemoryController,
        operands: [RowAddr; 3],
        dst: RowAddr,
    ) -> Result<OpReceipt> {
        let geometry = *mc.module().geometry();
        for row in operands.iter().chain([&dst]) {
            self.check_operand(&geometry, *row)?;
        }
        let start = mc.clock();
        match self.kind {
            MajorityKind::Native3 => {
                let rows = self.triplet.rows(&geometry);
                for (src, dst_row) in operands.iter().zip(rows) {
                    copy_row(mc, *src, dst_row)?;
                }
                maj3::maj3_in_place(mc, &self.triplet)?;
                copy_row(mc, rows[0], dst)?;
            }
            MajorityKind::FracAssisted4 => {
                let quad = self.quad.as_ref().expect("quad set for FracAssisted4");
                let rows = quad.rows(&geometry);
                let frac_row = rows[self.fmaj_config.frac_role.min(3)];
                // Fractional helper: init via in-DRAM copy of an operand
                // (one copy, as §VI-A1 budgets) — the copied data is not
                // uniform, so one extra Frac op (minimum three) shrinks
                // the residual data-dependence geometrically.
                copy_row(mc, operands[0], frac_row)?;
                mc.run(&frac_program(frac_row, self.fmaj_config.frac_ops.max(3)))?;
                for (src, slot) in operands.iter().zip(self.fmaj_config.operand_roles()) {
                    copy_row(mc, *src, rows[slot])?;
                }
                let geometry2 = geometry;
                mc.run(&fmaj::fmaj_program(quad, &geometry2))?;
                copy_row(mc, rows[0], dst)?;
            }
        }
        Ok(OpReceipt {
            result: dst,
            cycles: Cycles(mc.clock() - start),
            kind: self.kind,
        })
    }

    /// Bulk bitwise AND: `dst = a & b` via `MAJ(a, b, zeros)`; `scratch`
    /// receives the constant row.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ComputeEngine::majority`].
    pub fn and(
        &self,
        mc: &mut MemoryController,
        a: RowAddr,
        b: RowAddr,
        scratch: RowAddr,
        dst: RowAddr,
    ) -> Result<OpReceipt> {
        let width = mc.module().row_bits();
        mc.write_row(scratch, &vec![false; width])?;
        self.majority(mc, [a, b, scratch], dst)
    }

    /// Bulk bitwise OR: `dst = a | b` via `MAJ(a, b, ones)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ComputeEngine::majority`].
    pub fn or(
        &self,
        mc: &mut MemoryController,
        a: RowAddr,
        b: RowAddr,
        scratch: RowAddr,
        dst: RowAddr,
    ) -> Result<OpReceipt> {
        let width = mc.module().row_bits();
        mc.write_row(scratch, &vec![true; width])?;
        self.majority(mc, [a, b, scratch], dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fracdram_model::{Geometry, GroupId, Module, ModuleConfig};

    fn controller(group: GroupId) -> MemoryController {
        let geometry = Geometry {
            banks: 2,
            subarrays_per_bank: 2,
            rows_per_subarray: 32,
            columns: 256,
        };
        MemoryController::new(Module::new(ModuleConfig::single_chip(group, 37, geometry)))
    }

    fn rows() -> (RowAddr, RowAddr, RowAddr, RowAddr) {
        // Operand rows clear of {0,1,2,8,9} (reserved by triplet/quad).
        (
            RowAddr::new(0, 16),
            RowAddr::new(0, 17),
            RowAddr::new(0, 18),
            RowAddr::new(0, 20),
        )
    }

    #[test]
    fn binds_with_the_right_kind_per_group() {
        let mc = controller(GroupId::B);
        let e = ComputeEngine::bind(&mc, SubarrayAddr::new(0, 0), false).unwrap();
        assert_eq!(e.kind(), MajorityKind::FracAssisted4);
        let e = ComputeEngine::bind(&mc, SubarrayAddr::new(0, 0), true).unwrap();
        assert_eq!(e.kind(), MajorityKind::Native3);
        let mc = controller(GroupId::C);
        let e = ComputeEngine::bind(&mc, SubarrayAddr::new(0, 0), true).unwrap();
        assert_eq!(
            e.kind(),
            MajorityKind::FracAssisted4,
            "C has no native MAJ3"
        );
        let mc = controller(GroupId::F);
        assert!(ComputeEngine::bind(&mc, SubarrayAddr::new(0, 0), false).is_err());
    }

    #[test]
    fn and_or_compute_correctly_on_most_columns() {
        for group in [GroupId::B, GroupId::C] {
            let mut mc = controller(group);
            let engine = ComputeEngine::bind(&mc, SubarrayAddr::new(0, 0), false).unwrap();
            let (ra, rb, scratch, dst) = rows();
            let width = mc.module().row_bits();
            let a: Vec<bool> = (0..width).map(|i| i % 2 == 0).collect();
            let b: Vec<bool> = (0..width).map(|i| i % 3 == 0).collect();
            mc.write_row(ra, &a).unwrap();
            mc.write_row(rb, &b).unwrap();

            engine.and(&mut mc, ra, rb, scratch, dst).unwrap();
            let result = mc.read_row(dst).unwrap();
            let ok = (0..width).filter(|&i| result[i] == (a[i] && b[i])).count();
            assert!(ok * 20 >= width * 18, "{group} AND: {ok}/{width}");

            mc.write_row(ra, &a).unwrap();
            mc.write_row(rb, &b).unwrap();
            engine.or(&mut mc, ra, rb, scratch, dst).unwrap();
            let result = mc.read_row(dst).unwrap();
            let ok = (0..width).filter(|&i| result[i] == (a[i] || b[i])).count();
            assert!(ok * 20 >= width * 18, "{group} OR: {ok}/{width}");
        }
    }

    #[test]
    fn operands_are_preserved_by_and() {
        let mut mc = controller(GroupId::B);
        let engine = ComputeEngine::bind(&mc, SubarrayAddr::new(0, 0), true).unwrap();
        let (ra, rb, scratch, dst) = rows();
        let width = mc.module().row_bits();
        let a: Vec<bool> = (0..width).map(|i| i % 7 == 0).collect();
        let b = vec![true; width];
        mc.write_row(ra, &a).unwrap();
        mc.write_row(rb, &b).unwrap();
        engine.and(&mut mc, ra, rb, scratch, dst).unwrap();
        assert_eq!(mc.read_row(ra).unwrap(), a, "operand A clobbered");
        assert_eq!(mc.read_row(rb).unwrap(), b, "operand B clobbered");
    }

    #[test]
    fn reserved_rows_are_rejected_as_operands() {
        let mut mc = controller(GroupId::B);
        let engine = ComputeEngine::bind(&mc, SubarrayAddr::new(0, 0), false).unwrap();
        assert!(engine.reserved_rows().contains(&0));
        assert!(engine.reserved_rows().contains(&8));
        let (_, rb, scratch, dst) = rows();
        let err = engine
            .majority(&mut mc, [RowAddr::new(0, 1), rb, scratch], dst)
            .unwrap_err();
        assert!(matches!(err, FracDramError::BadRowSet { .. }));
        // Foreign sub-array rows are rejected too.
        let err = engine
            .majority(&mut mc, [RowAddr::new(0, 40), rb, scratch], dst)
            .unwrap_err();
        assert!(matches!(err, FracDramError::BadRowSet { .. }));
    }

    #[test]
    fn fmaj_engine_costs_about_thirty_percent_more_cycles() {
        let mut mc = controller(GroupId::B);
        let (ra, rb, rc, dst) = rows();
        let width = mc.module().row_bits();
        for r in [ra, rb, rc] {
            mc.write_row(r, &vec![true; width]).unwrap();
        }
        let native = ComputeEngine::bind(&mc, SubarrayAddr::new(0, 0), true).unwrap();
        let n = native.majority(&mut mc, [ra, rb, rc], dst).unwrap();
        let fm = ComputeEngine::bind(&mc, SubarrayAddr::new(0, 0), false).unwrap();
        for r in [ra, rb, rc] {
            mc.write_row(r, &vec![true; width]).unwrap();
        }
        let f = fm.majority(&mut mc, [ra, rb, rc], dst).unwrap();
        let overhead = f.cycles.value() as f64 / n.cycles.value() as f64 - 1.0;
        assert!(
            (0.15..0.55).contains(&overhead),
            "overhead = {:.1}% (native {} vs F-MAJ {})",
            overhead * 100.0,
            n.cycles,
            f.cycles
        );
    }
}
