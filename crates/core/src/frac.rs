//! The *Frac* primitive (§III-A): storing a fractional value in an
//! entire DRAM row.
//!
//! A Frac operation is an ACTIVATE followed by a PRECHARGE on the next
//! command cycle. The PRECHARGE interrupts the in-flight row activation
//! before the sense amplifier is enabled: the cells of the row have
//! charge-shared with their half-`Vdd` bit-lines but are disconnected
//! before restoration, so each cell keeps an intermediate voltage —
//! between `Vdd/2` and its previous rail. Each additional Frac operation
//! pulls the row geometrically closer to `Vdd/2`.
//!
//! One Frac operation occupies [`FRAC_CYCLES`] = 7 memory cycles (two
//! command cycles plus five idle cycles for the PRECHARGE to complete),
//! exactly as the paper reports.

use fracdram_model::{GroupId, RowAddr};
use fracdram_softmc::{MemoryController, Program};

use crate::error::{FracDramError, Result};

/// Memory cycles one Frac operation occupies (2 commands + 5 idle).
pub const FRAC_CYCLES: u64 = 7;

/// Builds the program for `count` back-to-back Frac operations on `row`.
///
/// Each repetition is `ACTIVATE(row)` immediately followed by
/// `PRECHARGE`, then five idle cycles so the precharge completes before
/// the next activation — the 7-cycle schedule of Fig. 3.
pub fn frac_program(row: RowAddr, count: usize) -> Program {
    // One builder for the whole sequence: appending `count` repetitions
    // directly produces the same instruction list as concatenating
    // `count` single-op programs, without the per-op allocations.
    let mut b = Program::builder();
    for _ in 0..count {
        b = b.act(row).pre(row.bank).delay(FRAC_CYCLES - 2);
    }
    b.build()
}

/// Executes `count` Frac operations on `row`.
///
/// The row's previous logical content is destroyed: every cell ends at a
/// fractional voltage. Starting from all ones the value lies between
/// `Vdd/2` and `Vdd`; from all zeros, between 0 and `Vdd/2`; more
/// operations land closer to `Vdd/2` (§V-A).
///
/// # Errors
///
/// Returns [`FracDramError::Unsupported`] on groups with command-timing
/// guards (J, K, L) — their chips execute the sequence as legally timed
/// commands and no fractional value is produced — and propagates
/// controller errors.
pub fn frac(mc: &mut MemoryController, row: RowAddr, count: usize) -> Result<()> {
    let group = require_frac_support(mc)?;
    debug_assert!(!group.profile().timing_guard);
    mc.run(&frac_program(row, count))?;
    Ok(())
}

/// Builds the logical bit pattern that stores the same **physical**
/// rail (`Vdd` for `physical_ones`, ground otherwise) in every cell of
/// a row — logical values are inverted on anti-cell columns, the
/// paper's §II-C convention: "we store opposite logic values to
/// anti-cells by default, so that they physically hold the same voltage
/// as true-cells".
pub fn physical_pattern(mc: &mut MemoryController, row: RowAddr, physical_ones: bool) -> Vec<bool> {
    let geometry = *mc.module().geometry();
    let (sub, _) = geometry.split_row(row.row);
    let mask = mc.anti_mask(row.bank, sub);
    mask.iter().map(|&anti| physical_ones ^ anti).collect()
}

/// Initializes `row` to the same *physical* rail in every cell (legal
/// timing, polarity-corrected per §II-C), then executes `count` Frac
/// operations — leaving every cell at a fractional voltage on the same
/// side of `Vdd/2`.
///
/// This is the preparation step the paper uses everywhere a *specific*
/// fractional level is wanted: F-MAJ step 2 ("an initialization to all
/// zeros/ones before Frac is preferred") and the PUF ("store all ones to
/// that row as the initial value. Next we issue ten Frac operations").
///
/// # Errors
///
/// Same conditions as [`frac`].
pub fn store_fractional(
    mc: &mut MemoryController,
    row: RowAddr,
    init_ones: bool,
    count: usize,
) -> Result<()> {
    require_frac_support(mc)?;
    let bits = physical_pattern(mc, row, init_ones);
    mc.write_row(row, &bits)?;
    mc.run(&frac_program(row, count))?;
    Ok(())
}

/// Checks that the controlled module's group executes Frac, returning
/// the group.
///
/// # Errors
///
/// Returns [`FracDramError::Unsupported`] for groups J, K, and L.
pub fn require_frac_support(mc: &MemoryController) -> Result<GroupId> {
    let profile = mc.module().profile();
    if profile.supports_frac() {
        Ok(profile.group)
    } else {
        Err(FracDramError::Unsupported {
            group: profile.group,
            operation: "Frac",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fracdram_model::{Geometry, Module, ModuleConfig};

    fn controller(group: GroupId) -> MemoryController {
        MemoryController::new(Module::new(ModuleConfig::single_chip(
            group,
            7,
            Geometry::tiny(),
        )))
    }

    #[test]
    fn program_is_seven_cycles_per_op() {
        let row = RowAddr::new(0, 3);
        for count in 1..=5 {
            let p = frac_program(row, count);
            assert_eq!(p.total_cycles().value(), FRAC_CYCLES * count as u64);
            assert_eq!(p.len(), 2 * count);
        }
    }

    #[test]
    fn program_violates_jedec_by_design() {
        let mc = controller(GroupId::B);
        let violations = mc.check(&frac_program(RowAddr::new(0, 1), 1));
        assert!(!violations.is_empty(), "Frac must be out-of-spec");
    }

    #[test]
    fn frac_moves_ones_toward_half_vdd_monotonically() {
        let mut mc = controller(GroupId::B);
        let row = RowAddr::new(0, 4);
        let mut prev = f64::INFINITY;
        for count in 1..=5 {
            // Physical Vdd in every cell, then `count` Frac operations.
            store_fractional(&mut mc, row, true, count).unwrap();
            let t = mc.clock();
            let v = mc.module_mut().probe_cell_voltage(row, 0, t).value();
            assert!(v > 0.75 && v < 1.5, "count {count}: v = {v}");
            assert!(v < prev, "more Frac ops must land closer to Vdd/2");
            prev = v;
        }
    }

    #[test]
    fn frac_moves_zeros_toward_half_vdd() {
        let mut mc = controller(GroupId::B);
        let row = RowAddr::new(1, 9);
        store_fractional(&mut mc, row, false, 3).unwrap();
        let t = mc.clock();
        // Physical ground raised toward (but never past) Vdd/2.
        let v = mc.module_mut().probe_cell_voltage(row, 0, t).value();
        assert!(v > 0.0 && v < 0.75 + 0.05, "v = {v}");
    }

    #[test]
    fn timing_guarded_group_is_rejected() {
        for group in [GroupId::J, GroupId::K, GroupId::L] {
            let mut mc = controller(group);
            let err = frac(&mut mc, RowAddr::new(0, 0), 1).unwrap_err();
            assert!(matches!(err, FracDramError::Unsupported { .. }), "{group}");
        }
    }

    #[test]
    fn guarded_chip_would_ignore_the_sequence_anyway() {
        // Bypass the capability check and issue the raw program against a
        // group J module: the timing guard stretches the sequence into
        // legal commands, so the cell keeps a full rail.
        let mut mc = controller(GroupId::J);
        let row = RowAddr::new(0, 2);
        let pattern: Vec<bool> = (0..64).map(|i| i % 3 != 0).collect();
        mc.write_row(row, &pattern).unwrap();
        mc.run(&frac_program(row, 3)).unwrap();
        mc.wait(fracdram_model::Cycles(100));
        assert_eq!(
            mc.read_row(row).unwrap(),
            pattern,
            "guarded chip must keep its data intact"
        );
    }

    #[test]
    fn frac_state_survives_reads_of_other_rows() {
        let mut mc = controller(GroupId::B);
        let frac_row = RowAddr::new(0, 4);
        let other = RowAddr::new(0, 20); // different sub-array region
        store_fractional(&mut mc, frac_row, true, 2).unwrap();
        let t0 = mc.clock();
        let v0 = mc.module_mut().probe_cell_voltage(frac_row, 0, t0).value();
        mc.write_row(other, &[false; 64]).unwrap();
        mc.read_row(other).unwrap();
        let t1 = mc.clock();
        let v1 = mc.module_mut().probe_cell_voltage(frac_row, 0, t1).value();
        assert!(
            (v0 - v1).abs() < 1e-3,
            "fractional value disturbed: {v0} -> {v1}"
        );
    }
}
