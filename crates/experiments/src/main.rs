//! Experiment index: lists the binaries that regenerate each table and
//! figure of the FracDRAM paper.

fn main() {
    println!("FracDRAM experiment binaries (run with `cargo run --release -p fracdram-experiments --bin <name>`):\n");
    for (bin, what) in [
        (
            "table1",
            "Table I  — per-group capability matrix (Frac / 3-row / 4-row)",
        ),
        (
            "fig3_frac_trace",
            "Fig. 3   — cell/bit-line voltage during Frac",
        ),
        (
            "fig4_halfm_trace",
            "Fig. 4   — cell voltages during Half-m (weak 1 / weak 0 / Half)",
        ),
        (
            "fig6_retention",
            "Fig. 6   — retention PDF heatmap vs #Frac + cell categories",
        ),
        (
            "fig7_maj3_verify",
            "Fig. 7   — (X1, X2) verification proportions vs #Frac",
        ),
        (
            "fig8_halfm_eval",
            "Fig. 8   — Half-m retention + MAJ3 verification",
        ),
        (
            "fig9_fmaj_coverage",
            "Fig. 9   — F-MAJ coverage vs #Frac per configuration",
        ),
        (
            "fig10_fmaj_stability",
            "Fig. 10  — per-combo breakdown + stability CDFs (9.1% -> 2.2%)",
        ),
        (
            "fig11_puf_hd",
            "Fig. 11  — PUF intra-/inter-HD and Hamming weights",
        ),
        (
            "fig12_puf_env",
            "Fig. 12  — PUF robustness to voltage/temperature changes",
        ),
        (
            "nist_suite",
            "SVI-B2   — NIST SP 800-22 (15 tests) on whitened PUF output",
        ),
        (
            "overhead",
            "SVI-A/B  — cycle accounting: primitives, F-MAJ overhead, PUF eval time",
        ),
        (
            "ablation",
            "extra    — per-mechanism ablation: which knob drives which result",
        ),
        (
            "decoder_survey",
            "SVI-A1   — opened-row counts over all (R1,R2) pairs (2^k findings)",
        ),
        (
            "fault_sweep",
            "extra    — Frac / F-MAJ / PUF success rate vs injected fault density",
        ),
    ] {
        println!("  {bin:<22} {what}");
    }
    println!("\nEvery binary accepts --help and scale overrides (--modules, --trials, ...).");
    println!("Fleet binaries also take --jobs N (deterministic: output is byte-identical");
    println!("at any job count) and --json PATH (structured per-task results).");
}
