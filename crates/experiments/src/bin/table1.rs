//! **Table I**: evaluated DRAM groups and their empirically probed
//! capabilities (Frac, three-row activation, four-row activation).
//!
//! Each group's module is surveyed by *issuing the command sequences and
//! observing behavior* — the capability columns are measured, not looked
//! up.
//!
//! ```text
//! cargo run --release -p fracdram-experiments --bin table1 [-- --modules N --seed S]
//! ```

use fracdram::multirow::survey;
use fracdram_experiments::{render, setup, Args};
use fracdram_model::GroupId;

fn main() {
    let args = Args::parse();
    if args.usage(
        "table1",
        "reproduce Table I: per-group capability matrix",
        &[
            ("modules", "modules surveyed per group (default 1)"),
            ("seed", "base die seed (default 1)"),
        ],
    ) {
        return;
    }
    let modules = args.usize("modules", 1);
    let seed = args.u64("seed", 1);

    println!(
        "{}",
        render::header("Table I — DRAM groups and capabilities")
    );
    println!(
        "{:<6} {:<9} {:>9} {:>7}   {:>5} {:>10} {:>9}",
        "Group", "Vendor", "Freq(MHz)", "#Chips", "Frac", "Three-row", "Four-row"
    );
    let mark = |b: bool| if b { "yes" } else { "-" };
    for group in GroupId::ALL {
        let profile = group.profile();
        // Survey `modules` dies; a capability counts when every surveyed
        // module of the group exhibits it (they are homogeneous by
        // construction, so this also cross-checks determinism).
        let mut frac = true;
        let mut three = true;
        let mut four = true;
        for m in 0..modules {
            let mut mc = setup::controller(group, setup::compute_geometry(), seed + m as u64);
            let caps = survey(&mut mc).expect("survey failed");
            frac &= caps.frac;
            three &= caps.three_row;
            four &= caps.four_row;
        }
        println!(
            "{:<6} {:<9} {:>9} {:>7}   {:>5} {:>10} {:>9}",
            group.to_string(),
            profile.vendor,
            profile.freq_mhz,
            profile.chips_evaluated,
            mark(frac),
            mark(three),
            mark(four),
        );
    }
    let total: u32 = GroupId::ALL
        .iter()
        .map(|g| g.profile().chips_evaluated)
        .sum();
    println!("\ntotal chips represented: {total} (paper: 528 evaluated, 582 incl. §I count)");
    println!("expected: Frac on A-I; three-row only on B; four-row on B, C, D");
}
