//! **Table I**: evaluated DRAM groups and their empirically probed
//! capabilities (Frac, three-row activation, four-row activation).
//!
//! Each group's module is surveyed by *issuing the command sequences and
//! observing behavior* — the capability columns are measured, not looked
//! up. Surveys fan out over the fleet with one task per (group, module).
//!
//! ```text
//! cargo run --release -p fracdram-experiments --bin table1 [-- --modules N --jobs N]
//! ```

use fracdram::multirow::survey;
use fracdram_experiments::{fleet, render, setup, Args, Json, TaskKey};
use fracdram_model::GroupId;

fn main() {
    let args = Args::parse();
    if args.usage(
        "table1",
        "reproduce Table I: per-group capability matrix",
        &[
            ("modules", "modules surveyed per group (default 1)"),
            ("seed", "base die seed (default 1)"),
            ("jobs", "fleet worker threads (default: all cores)"),
            ("intra-jobs", "chip-parallel workers per module (default 1)"),
            ("sched", "cross-bank batch scheduling: on|off (default on)"),
            ("retries", "extra attempts for a failing task (default 0)"),
            ("keep-going", "complete remaining tasks after a failure"),
            ("fail-fast", "stop claiming tasks after a failure (default)"),
            ("json", "write structured fleet results to PATH"),
        ],
    ) {
        return;
    }
    let modules = args.usize("modules", 1);
    let seed = args.u64("seed", 1);
    setup::set_intra_jobs(args.intra_jobs());
    setup::set_sched(args.sched());
    let jobs = args.jobs();
    let policy = args.failure_policy();
    args.reject_unknown();

    let mut plan = Vec::new();
    for group in GroupId::ALL {
        for m in 0..modules {
            plan.push(TaskKey::new(group, m, 0));
        }
    }
    let run = fleet::run_with(&plan, seed, jobs, policy, |key, _seed| {
        let mut mc = setup::controller(
            key.group,
            setup::compute_geometry(),
            seed + key.module as u64,
        );
        let caps = survey(&mut mc).expect("survey failed");
        setup::reclaim_caches(&mut mc);
        ((caps.frac, caps.three_row, caps.four_row), mc.metrics())
    });
    eprintln!("{}", run.summary());

    println!(
        "{}",
        render::header("Table I — DRAM groups and capabilities")
    );
    println!(
        "{:<6} {:<9} {:>9} {:>7}   {:>5} {:>10} {:>9}",
        "Group", "Vendor", "Freq(MHz)", "#Chips", "Frac", "Three-row", "Four-row"
    );
    let mark = |b: bool| if b { "yes" } else { "-" };
    for group in GroupId::ALL {
        let profile = group.profile();
        // A capability counts when every surveyed module of the group
        // exhibits it (they are homogeneous by construction, so this
        // also cross-checks determinism).
        let mut frac = true;
        let mut three = true;
        let mut four = true;
        for report in run.tasks.iter().filter(|t| t.key.group == group) {
            let (f, t, q) = report.value();
            frac &= f;
            three &= t;
            four &= q;
        }
        println!(
            "{:<6} {:<9} {:>9} {:>7}   {:>5} {:>10} {:>9}",
            group.to_string(),
            profile.vendor,
            profile.freq_mhz,
            profile.chips_evaluated,
            mark(frac),
            mark(three),
            mark(four),
        );
    }

    if let Some(path) = args.json_path() {
        run.write_json("table1", path, |&(frac, three, four)| {
            Json::obj()
                .field("frac", frac)
                .field("three_row", three)
                .field("four_row", four)
        })
        .unwrap_or_else(|err| fracdram_experiments::exit_json_write_error(path, &err));
    }

    let total: u32 = GroupId::ALL
        .iter()
        .map(|g| g.profile().chips_evaluated)
        .sum();
    println!("\ntotal chips represented: {total} (paper: 528 evaluated, 582 incl. §I count)");
    println!("expected: Frac on A-I; three-row only on B; four-row on B, C, D");

    if run.failed() > 0 {
        std::process::exit(1);
    }
}
