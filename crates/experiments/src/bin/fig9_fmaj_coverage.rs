//! **Figure 9**: F-MAJ coverage as a function of the number of Frac
//! operations, for every fractional-row placement and initial value, on
//! groups B, C, and D — with the baseline MAJ3 coverage for group B.
//!
//! ```text
//! cargo run --release -p fracdram-experiments --bin fig9_fmaj_coverage [-- --modules N --subarrays N]
//! ```

use fracdram::fmaj::{fmaj_coverage, FmajConfig};
use fracdram::maj3::maj3_coverage;
use fracdram::rowsets::{Quad, Triplet};
use fracdram_experiments::{render, setup, Args};
use fracdram_model::{GroupId, SubarrayAddr};
use fracdram_stats::Summary;

fn main() {
    let args = Args::parse();
    if args.usage(
        "fig9_fmaj_coverage",
        "reproduce Fig. 9: F-MAJ coverage vs #Frac per configuration",
        &[
            ("modules", "modules per group (default 2; paper: all chips)"),
            ("subarrays", "sub-arrays per module (default 2; paper: all)"),
            ("maxfrac", "largest Frac count swept (default 5)"),
            ("seed", "base die seed (default 9)"),
        ],
    ) {
        return;
    }
    let modules = args.usize("modules", 2);
    let subarrays = args.usize("subarrays", 2);
    let max_frac = args.usize("maxfrac", 5);
    let seed = args.u64("seed", 9);

    println!(
        "{}",
        render::header("Fig. 9 — F-MAJ coverage vs number of Frac operations")
    );
    println!("each line: mean coverage over modules x sub-arrays (95% CI half-width in parens)\n");

    for group in [GroupId::B, GroupId::C, GroupId::D] {
        println!(
            "group {group} — quad rows {:?}, best config per paper: {:?}",
            Quad::canonical(&setup::compute_geometry(), SubarrayAddr::new(0, 0), group)
                .expect("quad")
                .local_roles(),
            FmajConfig::best_for(group),
        );
        // Baseline MAJ3 (only group B can run it).
        if group == GroupId::B {
            let mut samples = Vec::new();
            for m in 0..modules {
                let mut mc = setup::controller(group, setup::compute_geometry(), seed + m as u64);
                let geometry = *mc.module().geometry();
                for s in 0..subarrays {
                    let sa = SubarrayAddr::new(s % geometry.banks, s / geometry.banks);
                    let triplet = Triplet::first(&geometry, sa);
                    samples.push(maj3_coverage(&mut mc, &triplet).expect("maj3"));
                }
            }
            let sum = Summary::of(&samples);
            println!(
                "  baseline MAJ3 (dashed line): {} (±{:.1}pp)",
                render::pct(sum.mean),
                sum.ci95_half_width() * 100.0
            );
        }
        println!(
            "  {:<22} {}",
            "config",
            (0..=max_frac)
                .map(|n| format!("{n:>7}"))
                .collect::<String>()
        );
        for role in 0..4 {
            for init_ones in [true, false] {
                let mut line = String::new();
                for frac_ops in 0..=max_frac {
                    let config = FmajConfig {
                        frac_role: role,
                        init_ones,
                        frac_ops,
                    };
                    let mut samples = Vec::new();
                    for m in 0..modules {
                        let mut mc =
                            setup::controller(group, setup::compute_geometry(), seed + m as u64);
                        let geometry = *mc.module().geometry();
                        for s in 0..subarrays {
                            let sa = SubarrayAddr::new(s % geometry.banks, s / geometry.banks);
                            let quad = Quad::canonical(&geometry, sa, group).expect("quad");
                            samples.push(fmaj_coverage(&mut mc, &quad, &config).expect("fmaj"));
                        }
                    }
                    let sum = Summary::of(&samples);
                    line.push_str(&format!("{:>7.3}", sum.mean));
                }
                println!(
                    "  frac in R{} init {:<5} {line}",
                    role + 1,
                    if init_ones { "ones" } else { "zeros" }
                );
            }
        }
        println!();
    }
    println!("expected shapes: B peaks with frac in R2 (primary row), init ones,");
    println!("beating the baseline MAJ3; C favors R1 with a level above Vdd/2;");
    println!("D favors R4; all four-row-capable groups reach non-zero coverage.");
}
