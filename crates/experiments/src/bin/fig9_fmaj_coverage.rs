//! **Figure 9**: F-MAJ coverage as a function of the number of Frac
//! operations, for every fractional-row placement and initial value, on
//! groups B, C, and D — with the baseline MAJ3 coverage for group B.
//!
//! The sweep fans out over the experiment fleet: one task per
//! (group, module, sub-array), each measuring every configuration on
//! its own controller, so `--jobs N` never changes the printed figure.
//!
//! ```text
//! cargo run --release -p fracdram-experiments --bin fig9_fmaj_coverage [-- --modules N --jobs N]
//! ```

use fracdram::fmaj::{fmaj_coverage, FmajConfig};
use fracdram::maj3::maj3_coverage;
use fracdram::rowsets::{Quad, Triplet};
use fracdram_experiments::{fleet, render, setup, Args, Json, TaskKey};
use fracdram_model::{GroupId, SubarrayAddr};
use fracdram_stats::Summary;

/// One task's measurements: the full config sweep on one sub-array,
/// plus the MAJ3 baseline where the group supports it.
struct Coverage {
    maj3: Option<f64>,
    per_config: Vec<f64>,
}

/// The swept configurations, in a fixed printable order.
fn configs(max_frac: usize) -> Vec<FmajConfig> {
    let mut all = Vec::new();
    for role in 0..4 {
        for init_ones in [true, false] {
            for frac_ops in 0..=max_frac {
                all.push(FmajConfig {
                    frac_role: role,
                    init_ones,
                    frac_ops,
                });
            }
        }
    }
    all
}

fn main() {
    let args = Args::parse();
    if args.usage(
        "fig9_fmaj_coverage",
        "reproduce Fig. 9: F-MAJ coverage vs #Frac per configuration",
        &[
            ("modules", "modules per group (default 2; paper: all chips)"),
            ("subarrays", "sub-arrays per module (default 2; paper: all)"),
            ("maxfrac", "largest Frac count swept (default 5)"),
            ("seed", "base die seed (default 9)"),
            ("jobs", "fleet worker threads (default: all cores)"),
            ("intra-jobs", "chip-parallel workers per module (default 1)"),
            ("sched", "cross-bank batch scheduling: on|off (default on)"),
            ("retries", "extra attempts for a failing task (default 0)"),
            ("keep-going", "complete remaining tasks after a failure"),
            ("fail-fast", "stop claiming tasks after a failure (default)"),
            ("json", "write structured fleet results to PATH"),
        ],
    ) {
        return;
    }
    let modules = args.usize("modules", 2);
    let subarrays = args.usize("subarrays", 2);
    let max_frac = args.usize("maxfrac", 5);
    let seed = args.u64("seed", 9);
    setup::set_intra_jobs(args.intra_jobs());
    setup::set_sched(args.sched());
    let jobs = args.jobs();
    let policy = args.failure_policy();
    args.reject_unknown();

    println!(
        "{}",
        render::header("Fig. 9 — F-MAJ coverage vs number of Frac operations")
    );
    println!("each line: mean coverage over modules x sub-arrays (95% CI half-width in parens)\n");

    let sweep = configs(max_frac);
    let mut plan = Vec::new();
    for group in [GroupId::B, GroupId::C, GroupId::D] {
        for m in 0..modules {
            for s in 0..subarrays {
                plan.push(TaskKey::new(group, m, s));
            }
        }
    }
    let run = fleet::run_with(&plan, seed, jobs, policy, |key, _seed| {
        let mut mc = setup::controller(
            key.group,
            setup::compute_geometry(),
            seed + key.module as u64,
        );
        let geometry = *mc.module().geometry();
        let sa = SubarrayAddr::new(key.subarray % geometry.banks, key.subarray / geometry.banks);
        let quad = Quad::canonical(&geometry, sa, key.group).expect("quad");
        let maj3 = (key.group == GroupId::B).then(|| {
            let triplet = Triplet::first(&geometry, sa);
            maj3_coverage(&mut mc, &triplet).expect("maj3")
        });
        let per_config = sweep
            .iter()
            .map(|config| fmaj_coverage(&mut mc, &quad, config).expect("fmaj"))
            .collect();
        setup::reclaim_caches(&mut mc);
        (Coverage { maj3, per_config }, mc.metrics())
    });
    eprintln!("{}", run.summary());

    for group in [GroupId::B, GroupId::C, GroupId::D] {
        println!(
            "group {group} — quad rows {:?}, best config per paper: {:?}",
            Quad::canonical(&setup::compute_geometry(), SubarrayAddr::new(0, 0), group)
                .expect("quad")
                .local_roles(),
            FmajConfig::best_for(group),
        );
        let reports: Vec<_> = run.tasks.iter().filter(|t| t.key.group == group).collect();
        if group == GroupId::B {
            let samples: Vec<f64> = reports.iter().filter_map(|t| t.value().maj3).collect();
            let sum = Summary::of(&samples);
            println!(
                "  baseline MAJ3 (dashed line): {} (±{:.1}pp)",
                render::pct(sum.mean),
                sum.ci95_half_width() * 100.0
            );
        }
        println!(
            "  {:<22} {}",
            "config",
            (0..=max_frac)
                .map(|n| format!("{n:>7}"))
                .collect::<String>()
        );
        for role in 0..4 {
            for init_ones in [true, false] {
                let mut line = String::new();
                for frac_ops in 0..=max_frac {
                    let index = (role * 2 + usize::from(!init_ones)) * (max_frac + 1) + frac_ops;
                    let samples: Vec<f64> = reports
                        .iter()
                        .map(|t| t.value().per_config[index])
                        .collect();
                    line.push_str(&format!("{:>7.3}", Summary::of(&samples).mean));
                }
                println!(
                    "  frac in R{} init {:<5} {line}",
                    role + 1,
                    if init_ones { "ones" } else { "zeros" }
                );
            }
        }
        println!();
    }

    if let Some(path) = args.json_path() {
        run.write_json("fig9_fmaj_coverage", path, |v| {
            let mut obj = Json::obj().field("per_config", v.per_config.clone());
            if let Some(maj3) = v.maj3 {
                obj = obj.field("maj3", maj3);
            }
            obj
        })
        .unwrap_or_else(|err| fracdram_experiments::exit_json_write_error(path, &err));
    }

    println!("expected shapes: B peaks with frac in R2 (primary row), init ones,");
    println!("beating the baseline MAJ3; C favors R1 with a level above Vdd/2;");
    println!("D favors R4; all four-row-capable groups reach non-zero coverage.");

    if run.failed() > 0 {
        std::process::exit(1);
    }
}
