//! **Figure 6**: retention-time PDF versus the number of Frac
//! operations, per DRAM group, with the per-cell change-pattern
//! categories `[long retention, monotonic decrease, others]`.
//!
//! For each group, sampled rows are profiled with 0–5 Frac operations;
//! each heatmap column is the retention-bucket PDF at one Frac count.
//! Groups J/K/L are reported separately (Frac has no effect there).
//!
//! Profiling fans out over the fleet with one task per (group, sampled
//! row); the heatmap merge concatenates per-row buckets in plan order.
//!
//! ```text
//! cargo run --release -p fracdram-experiments --bin fig6_retention [-- --rows N --jobs N]
//! ```

use fracdram::retention::{
    classify_cells, measure_row_voted, BucketCounts, CategoryShares, RetentionBucket,
};
use fracdram_experiments::{fleet, render, setup, Args, Json, TaskKey};
use fracdram_model::{GroupId, RowAddr};

const MAX_FRAC: usize = 5;

fn main() {
    let args = Args::parse();
    if args.usage(
        "fig6_retention",
        "reproduce Fig. 6: retention PDF heatmap vs #Frac + cell categories",
        &[
            (
                "rows",
                "rows sampled per group (default 2; paper: 5 per bank)",
            ),
            (
                "votes",
                "profile repetitions per cell, median-voted (default 3)",
            ),
            ("seed", "base die seed (default 6)"),
            ("jobs", "fleet worker threads (default: all cores)"),
            ("intra-jobs", "chip-parallel workers per module (default 1)"),
            ("sched", "cross-bank batch scheduling: on|off (default on)"),
            ("retries", "extra attempts for a failing task (default 0)"),
            ("keep-going", "complete remaining tasks after a failure"),
            ("fail-fast", "stop claiming tasks after a failure (default)"),
            ("json", "write structured fleet results to PATH"),
        ],
    ) {
        return;
    }
    let rows = args.usize("rows", 2);
    let votes = args.usize("votes", 3);
    let seed = args.u64("seed", 6);
    setup::set_intra_jobs(args.intra_jobs());
    setup::set_sched(args.sched());
    let jobs = args.jobs();
    let policy = args.failure_policy();
    args.reject_unknown();

    println!(
        "{}",
        render::header("Fig. 6 — retention-time PDF vs number of Frac operations")
    );
    println!("rows = buckets (top = longest); columns = 0..=5 Frac ops; darker = more cells\n");

    // One task per (group, sampled row): profile that row at every Frac
    // count on its own controller. The sub-array slot indexes the
    // sampled row (row 5 of each bank, then 21).
    let mut plan = Vec::new();
    for group in GroupId::ALL {
        for i in 0..rows {
            plan.push(TaskKey::new(group, 0, i));
        }
    }
    let run = fleet::run_with(&plan, seed, jobs, policy, |key, _seed| {
        let mut mc = setup::controller(key.group, setup::compute_geometry(), seed);
        let i = key.subarray;
        let row = RowAddr::new(i % 2, 5 + 16 * (i / 2));
        let per_count: Vec<Vec<RetentionBucket>> = (0..=MAX_FRAC)
            .map(|n| measure_row_voted(&mut mc, row, n, votes).expect("measure"))
            .collect();
        setup::reclaim_caches(&mut mc);
        (per_count, mc.metrics())
    });
    eprintln!("{}", run.summary());

    for group in GroupId::ALL {
        // per_count[n] = concatenated buckets of all sampled rows at n
        // ops, merged in plan (row-sample) order.
        let mut per_count: Vec<Vec<RetentionBucket>> = vec![Vec::new(); MAX_FRAC + 1];
        for report in run.tasks.iter().filter(|t| t.key.group == group) {
            for (n, acc) in per_count.iter_mut().enumerate() {
                acc.extend_from_slice(&report.value()[n]);
            }
        }
        let pdfs: Vec<[f64; 6]> = per_count
            .iter()
            .map(|b| BucketCounts::from_buckets(b).pdf())
            .collect();
        let categories = classify_cells(&per_count);
        let shares = CategoryShares::from_categories(&categories);

        if group.profile().timing_guard {
            // Groups J, K, L: Frac has no effect on the *profile*. The
            // comparison allows the repeat-to-repeat wobble any two
            // Frac-free measurements show (VRT cells, boundary noise).
            let total = per_count[0].len().max(1);
            let max_diff = per_count[1..]
                .iter()
                .map(|b| b.iter().zip(&per_count[0]).filter(|(x, y)| x != y).count())
                .max()
                .unwrap_or(0);
            println!(
                "group {group} ({}): Frac has no effect on the profile                  (max {}/{total} cells differ between repeats — {})",
                group.profile().vendor,
                max_diff,
                if max_diff * 50 <= total { "verified" } else { "UNEXPECTED drift!" },
            );
            continue;
        }

        println!(
            "group {group} ({:<8}) categories [long, monotonic, other] = [{}, {}, {}]",
            group.profile().vendor,
            render::pct(shares.long),
            render::pct(shares.monotonic),
            render::pct(shares.other),
        );
        for (rank, bucket) in RetentionBucket::ALL.iter().enumerate().rev() {
            let cells: String = pdfs
                .iter()
                .map(|pdf| format!(" {} ", render::shade(pdf[rank])))
                .collect();
            println!("  {:>9} |{cells}|", bucket.label());
        }
        let counts: String = (0..=MAX_FRAC).map(|n| format!(" {n} ")).collect();
        println!("  {:>9}  {counts}  (#Frac)\n", "");
    }

    if let Some(path) = args.json_path() {
        run.write_json("fig6_retention", path, |per_count| {
            Json::obj()
                .field("frac_counts", per_count.len())
                .field("cells_per_count", per_count.first().map_or(0, Vec::len))
        })
        .unwrap_or_else(|err| fracdram_experiments::exit_json_write_error(path, &err));
    }

    println!("paper: monotonic-decrease cells average ~55% across groups A-I, others < 1%.");

    if run.failed() > 0 {
        std::process::exit(1);
    }
}
