//! Re-captures every golden snapshot and `experiments_output.txt` in one
//! command, so output-changing PRs stop hand-rolling captures.
//!
//! What it regenerates (paths relative to the repo root):
//!
//! * `crates/experiments/tests/golden/table1_small.txt` —
//!   `table1 --modules 2 --jobs 1`
//! * `crates/experiments/tests/golden/fig11_small.txt` —
//!   `fig11_puf_hd --challenges 8 --jobs 1`
//! * `experiments_output.txt` — all fifteen experiment binaries at
//!   default arguments, concatenated under `== name` banners.
//! * `crates/serve/tests/golden/replay_responses.log` —
//!   `fracdram-serve --replay crates/serve/tests/golden/replay_requests.log`
//!   (the daemon's replay golden).
//! * `crates/serve/tests/golden/chaos_responses.log` — the same replay
//!   under a seeded chaos plan (die-failure injection, breaker trip at
//!   one failure), pinning injected failures, remaps, and breaker
//!   rejections to exact requests.
//!
//! Every fleet binary is executed twice, at `--jobs 1` and `--jobs 8`,
//! and the two captures are compared byte-for-byte before anything is
//! written — a capture that is not thread-count-invariant aborts the
//! whole regeneration. Sibling binaries are resolved next to this
//! executable, so build everything first:
//!
//! ```text
//! cargo build --release
//! cargo run --release -p fracdram-experiments --bin regen-goldens
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

/// The sixteen experiment binaries in `experiments_output.txt` order,
/// with a flag for the ones that fan out over the task fleet (and so
/// accept `--jobs` and must be jobs-invariant).
const BINARIES: &[(&str, bool)] = &[
    ("table1", true),
    ("fig3_frac_trace", false),
    ("fig4_halfm_trace", false),
    ("fig6_retention", true),
    ("fig7_maj3_verify", false),
    ("fig8_halfm_eval", true),
    ("fig9_fmaj_coverage", true),
    ("fig10_fmaj_stability", true),
    ("fig11_puf_hd", true),
    ("fig12_puf_env", true),
    ("nist_suite", true),
    ("overhead", false),
    ("decoder_survey", true),
    ("ablation", true),
    ("fault_sweep", true),
    ("population", true),
];

fn main() {
    let bin_dir = bin_dir();
    let root = repo_root();
    let golden_dir = root.join("crates/experiments/tests/golden");

    // ---- golden snapshots (the slices the regression tests pin) ------
    let table1 = capture(&bin_dir, "table1", &["--modules", "2", "--jobs", "1"]);
    write_capture(&golden_dir.join("table1_small.txt"), &table1);

    let fig11 = capture(
        &bin_dir,
        "fig11_puf_hd",
        &["--challenges", "8", "--jobs", "1"],
    );
    write_capture(&golden_dir.join("fig11_small.txt"), &fig11);

    // ---- full experiment capture, jobs-invariance checked ------------
    let mut out = String::new();
    for (i, &(name, fleet)) in BINARIES.iter().enumerate() {
        let stdout = if fleet {
            let j1 = capture(&bin_dir, name, &["--jobs", "1"]);
            let j8 = capture(&bin_dir, name, &["--jobs", "8"]);
            assert_eq!(
                j1, j8,
                "{name}: stdout differs between --jobs 1 and --jobs 8"
            );
            j1
        } else {
            capture(&bin_dir, name, &[])
        };
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&format!("{0}\n== {name}\n{0}\n", "=".repeat(64)));
        out.push_str(&stdout);
        if !stdout.ends_with('\n') {
            out.push('\n');
        }
    }
    write_capture(&root.join("experiments_output.txt"), &out);

    // ---- server replay golden ----------------------------------------
    let serve_golden = root.join("crates/serve/tests/golden");
    let requests = serve_golden.join("replay_requests.log");
    let replay = capture(
        &bin_dir,
        "fracdram-serve",
        &["--replay", requests.to_str().expect("utf-8 path")],
    );
    write_capture(&serve_golden.join("replay_responses.log"), &replay);

    // ---- chaos replay golden -----------------------------------------
    // Must match the config pinned in crates/serve/tests/golden_chaos.rs.
    let chaos_requests = serve_golden.join("chaos_requests.log");
    let chaos = capture(
        &bin_dir,
        "fracdram-serve",
        &[
            "--replay",
            chaos_requests.to_str().expect("utf-8 path"),
            "--breaker-trip",
            "1",
            "--breaker-open",
            "3",
            "--chaos-seed",
            "11",
            "--chaos-die-fail",
            "0.2",
        ],
    );
    write_capture(&serve_golden.join("chaos_responses.log"), &chaos);

    eprintln!("regen-goldens: all captures regenerated");
}

/// The directory holding the sibling experiment binaries.
fn bin_dir() -> PathBuf {
    std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("exe has a parent dir")
        .to_path_buf()
}

/// The repository root, resolved from this crate's manifest directory
/// (`crates/experiments` → two levels up).
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/experiments is two levels below the root")
        .to_path_buf()
}

/// Runs one experiment binary and returns its stdout; stderr (fleet
/// summaries, perf counters) passes through to the operator.
fn capture(bin_dir: &Path, name: &str, args: &[&str]) -> String {
    let exe = bin_dir.join(name);
    let output = Command::new(&exe)
        .args(args)
        .output()
        .unwrap_or_else(|err| panic!("spawn {}: {err}", exe.display()));
    assert!(
        output.status.success(),
        "{name} {args:?} failed ({}):\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("utf-8 stdout")
}

/// Writes a capture, reporting whether it changed.
fn write_capture(path: &Path, contents: &str) {
    let old = std::fs::read_to_string(path).ok();
    if old.as_deref() == Some(contents) {
        eprintln!("unchanged  {}", path.display());
        return;
    }
    std::fs::write(path, contents).unwrap_or_else(|err| panic!("write {}: {err}", path.display()));
    eprintln!("rewrote    {}", path.display());
}
