//! **Fault sweep**: success rate of the paper's primitives versus
//! injected fault density.
//!
//! The figure binaries measure the primitives on *healthy* dies; this
//! sweep measures how gracefully they degrade as deterministic fault
//! injection ([`fracdram_model::FaultConfig`]) dials in stuck cells,
//! weak cells, and flaky sense amplifiers. Because fault membership is
//! nested in density (a cell stuck at density 0.005 is still stuck at
//! 0.08), every curve degrades monotonically by construction — a
//! non-monotone curve is a bug, and the unit test below enforces it.
//!
//! Three curves per group:
//!
//! - **frac**: write→Frac-stress→read round-trip correctness of the
//!   Frac experiments' data path (per-column match rate);
//! - **fmaj**: mean per-column F-MAJ success rate
//!   ([`fracdram_experiments::tasks::stability_fmaj`]);
//! - **puf**: Frac-PUF stability, `1 −` mean intra-device normalized
//!   Hamming distance between repeated evaluations of one challenge.
//!
//! Every density point runs on the **same die** (same die seed), so the
//! curves isolate the fault density from process variation.
//!
//! ```text
//! cargo run --release -p fracdram-experiments --bin fault_sweep [-- --trials N --jobs N]
//! ```

use fracdram::fmaj::FmajConfig;
use fracdram::frac::frac;
use fracdram::puf::{evaluate, Challenge};
use fracdram::rowsets::Quad;
use fracdram_experiments::{fleet, render, setup, tasks, Args, Json, TaskKey};
use fracdram_model::{FaultConfig, GroupId, RowAddr, SubarrayAddr};
use fracdram_softmc::RunMetrics;
use fracdram_stats::hamming::normalized_distance;
use fracdram_stats::rng::Rng;

/// Stuck-cell density ladder; the other fault classes scale with it.
const DENSITIES: &[f64] = &[0.0, 0.005, 0.02, 0.08];

/// Groups swept (both support Frac, F-MAJ, and the PUF).
const GROUPS: &[GroupId] = &[GroupId::B, GroupId::C];

/// The fault configuration at one density point: stuck cells and sense
/// flips at the density itself, weak cells at twice it.
fn fault_config(density: f64) -> FaultConfig {
    FaultConfig {
        stuck_density: density,
        weak_density: 2.0 * density,
        sense_flip_rate: density,
        ..FaultConfig::none()
    }
}

/// One density point's success rates.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SweepPoint {
    frac: f64,
    fmaj: f64,
    puf: f64,
}

/// Measures all three curves at one density on one die. `die_seed`
/// stays fixed across densities (nested fault maps need the same die);
/// `task_seed` drives only the trial randomness.
fn sweep_point(
    group: GroupId,
    die_seed: u64,
    task_seed: u64,
    density: f64,
    trials: usize,
    puf_repeats: usize,
) -> (SweepPoint, RunMetrics) {
    let mut mc = setup::controller(group, setup::compute_geometry(), die_seed);
    mc.module_mut().set_fault_config(&fault_config(density));
    let mut rng = Rng::seed_from_u64(task_seed);
    let geometry = *mc.module().geometry();
    let width = mc.module().row_bits();

    // 1. Frac-path round trip: write a random row, stress the bank with
    //    an out-of-spec Frac on a neighbor row, read the data back.
    let data = RowAddr::new(0, 3);
    let neighbor = RowAddr::new(0, 9);
    let mut matched = 0usize;
    for _ in 0..trials {
        let pattern = rng.gen_bools(width);
        mc.write_row(data, &pattern).expect("write");
        frac(&mut mc, neighbor, 1).expect("frac");
        let back = mc.read_row(data).expect("read");
        matched += back
            .iter()
            .zip(&pattern)
            .filter(|(got, want)| got == want)
            .count();
    }
    let frac_rate = matched as f64 / (trials * width) as f64;

    // 2. F-MAJ stability.
    let quad = Quad::canonical(&geometry, SubarrayAddr::new(0, 0), group).expect("quad");
    let config = FmajConfig::best_for(group);
    let stability = tasks::stability_fmaj(&mut mc, &quad, &config, trials, &mut rng);
    let fmaj_rate = stability.iter().sum::<f64>() / stability.len() as f64;

    // 3. PUF stability: repeated evaluations of fixed challenges.
    let challenges = [Challenge::new(1, 7), Challenge::new(0, 21)];
    let mut distance = 0.0;
    for challenge in challenges {
        for _ in 0..puf_repeats {
            let first = evaluate(&mut mc, challenge).expect("puf");
            let second = evaluate(&mut mc, challenge).expect("puf");
            distance += normalized_distance(&first, &second);
        }
    }
    let puf_rate = 1.0 - distance / (challenges.len() * puf_repeats) as f64;

    setup::reclaim_caches(&mut mc);
    (
        SweepPoint {
            frac: frac_rate,
            fmaj: fmaj_rate,
            puf: puf_rate,
        },
        mc.metrics(),
    )
}

fn main() {
    let args = Args::parse();
    if args.usage(
        "fault_sweep",
        "success rate of Frac / F-MAJ / PUF primitives vs injected fault density",
        &[
            (
                "trials",
                "write-read and F-MAJ trials per point (default 8)",
            ),
            ("puf-repeats", "PUF evaluation pairs per point (default 4)"),
            ("seed", "die seed (default 21)"),
            ("jobs", "fleet worker threads (default: all cores)"),
            ("intra-jobs", "chip-parallel workers per module (default 1)"),
            ("sched", "cross-bank batch scheduling: on|off (default on)"),
            ("retries", "extra attempts for a failing task (default 0)"),
            ("keep-going", "complete remaining tasks after a failure"),
            ("fail-fast", "stop claiming tasks after a failure (default)"),
            ("json", "write structured fleet results to PATH"),
        ],
    ) {
        return;
    }
    let trials = args.usize("trials", 8);
    let puf_repeats = args.usize("puf-repeats", 4);
    let seed = args.u64("seed", 21);
    setup::set_intra_jobs(args.intra_jobs());
    setup::set_sched(args.sched());
    let jobs = args.jobs();
    let policy = args.failure_policy();
    args.reject_unknown();

    let mut plan = Vec::new();
    for &group in GROUPS {
        for variant in 0..DENSITIES.len() {
            plan.push(TaskKey::new(group, 0, 0).with_variant(variant));
        }
    }
    let run = fleet::run_with(&plan, seed, jobs, policy, |key, task_seed| {
        sweep_point(
            key.group,
            seed,
            task_seed,
            DENSITIES[key.variant],
            trials,
            puf_repeats,
        )
    });
    eprintln!("{}", run.summary());

    println!(
        "{}",
        render::header("fault sweep — success rate vs injected fault density")
    );
    println!(
        "(stuck density and sense-flip rate shown; weak density = 2x; \
         same die at every point)\n"
    );
    for &group in GROUPS {
        println!("group {group} ({}):", group.profile().vendor);
        println!(
            "  {:>8} {:>10} {:>10} {:>10}",
            "density", "frac", "fmaj", "puf"
        );
        for report in run.tasks.iter().filter(|t| t.key.group == group) {
            let density = DENSITIES[report.key.variant];
            match report.ok() {
                Some(p) => println!(
                    "  {:>8.3} {:>10.4} {:>10.4} {:>10.4}",
                    density, p.frac, p.fmaj, p.puf
                ),
                None => println!("  {density:>8.3} {:>10} {:>10} {:>10}", "-", "-", "-"),
            }
        }
        println!();
    }
    println!("(curves degrade monotonically: fault membership is nested in density)");

    if let Some(path) = args.json_path() {
        run.write_json("fault_sweep", path, |p| {
            Json::obj()
                .field("frac", p.frac)
                .field("fmaj", p.fmaj)
                .field("puf", p.puf)
        })
        .unwrap_or_else(|err| fracdram_experiments::exit_json_write_error(path, &err));
    }

    if run.failed() > 0 {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance property: every curve degrades monotonically with
    /// density (up to a small statistical tolerance on the transient
    /// classes) and ends strictly below its fault-free value.
    #[test]
    fn curves_degrade_monotonically() {
        for &group in GROUPS {
            let points: Vec<SweepPoint> = DENSITIES
                .iter()
                .map(|&d| sweep_point(group, 21, 77, d, 4, 2).0)
                .collect();
            for pair in points.windows(2) {
                assert!(
                    pair[1].frac <= pair[0].frac + 0.01,
                    "group {group}: frac curve rose: {points:?}"
                );
                assert!(
                    pair[1].fmaj <= pair[0].fmaj + 0.01,
                    "group {group}: fmaj curve rose: {points:?}"
                );
                assert!(
                    pair[1].puf <= pair[0].puf + 0.01,
                    "group {group}: puf curve rose: {points:?}"
                );
            }
            let first = points.first().unwrap();
            let last = points.last().unwrap();
            assert!(
                last.frac < first.frac - 0.02,
                "group {group}: frac curve flat: {points:?}"
            );
            assert!(
                last.fmaj < first.fmaj - 0.02,
                "group {group}: fmaj curve flat: {points:?}"
            );
            assert!((0.0..=1.0).contains(&last.puf), "{points:?}");
        }
    }

    #[test]
    fn fault_free_point_is_healthy() {
        let (p, _) = sweep_point(GroupId::B, 21, 3, 0.0, 2, 1);
        assert_eq!(p.frac, 1.0, "fault-free write-read must be exact");
        assert!(p.fmaj > 0.9, "{p:?}");
        assert!(p.puf > 0.9, "{p:?}");
    }
}
