//! **Figure 10**: (a) the per-input-combination F-MAJ breakdown on group
//! C (fractional value in R1, initial ones), and (b)/(c) the stability
//! CDFs of F-MAJ on groups B and C — per-column success rate over many
//! trials with random inputs — against the group-B MAJ3 baseline.
//!
//! The headline numbers this regenerates: the average error rate of
//! in-memory majority drops from ~9 % (MAJ3) to ~2 % (F-MAJ) on group B.
//!
//! The (b)/(c) sweep fans out over the experiment fleet: one task per
//! (group, module, sub-array), each with its own controller and
//! task-derived RNG, so `--jobs N` changes wall time but never output.
//!
//! ```text
//! cargo run --release -p fracdram-experiments --bin fig10_fmaj_stability [-- --trials N --jobs N]
//! ```

use fracdram::fmaj::{combo_breakdown, FmajConfig};
use fracdram::maj3::TEST_COMBINATIONS;
use fracdram::rowsets::{Quad, Triplet};
use fracdram_experiments::{fleet, render, setup, tasks, Args, Json, TaskKey};
use fracdram_model::{GroupId, SubarrayAddr};
use fracdram_stats::rng::Rng;
use fracdram_stats::summary::quantile;

/// One (b)/(c) fleet task: F-MAJ stability plus, on group B, the MAJ3
/// baseline measured on the same controller.
struct Stability {
    fmaj: Vec<f64>,
    maj3: Option<Vec<f64>>,
}

fn print_cdf(label: &str, stability: &[f64]) {
    let always = stability.iter().filter(|&&s| s >= 1.0).count() as f64 / stability.len() as f64;
    let avg_err = 1.0 - stability.iter().sum::<f64>() / stability.len() as f64;
    println!(
        "  {label:<24} always-correct {:>6}   avg error {:>6}   p1/p10/p50 stability {:.3}/{:.3}/{:.3}",
        render::pct(always),
        render::pct(avg_err),
        quantile(stability, 0.01),
        quantile(stability, 0.10),
        quantile(stability, 0.50),
    );
}

fn main() {
    let args = Args::parse();
    if args.usage(
        "fig10_fmaj_stability",
        "reproduce Fig. 10: per-combo breakdown + stability CDFs",
        &[
            (
                "trials",
                "random-input trials per sub-array (default 200; paper: 10000)",
            ),
            (
                "subarrays",
                "sub-arrays sampled per module (default 4; paper: 500)",
            ),
            ("modules", "modules per group (default 2)"),
            ("seed", "base seed (default 10)"),
            ("jobs", "fleet worker threads (default: all cores)"),
            ("intra-jobs", "chip-parallel workers per module (default 1)"),
            ("sched", "cross-bank batch scheduling: on|off (default on)"),
            ("retries", "extra attempts for a failing task (default 0)"),
            ("keep-going", "complete remaining tasks after a failure"),
            ("fail-fast", "stop claiming tasks after a failure (default)"),
            ("json", "write structured fleet results to PATH"),
        ],
    ) {
        return;
    }
    let trials = args.usize("trials", 200);
    let subarrays = args.usize("subarrays", 4);
    let modules = args.usize("modules", 2);
    let seed = args.u64("seed", 10);
    setup::set_intra_jobs(args.intra_jobs());
    setup::set_sched(args.sched());
    let jobs = args.jobs();
    let policy = args.failure_policy();
    args.reject_unknown();

    // ---- (a) per-combination breakdown, group C, frac in R1, ones ----
    println!(
        "{}",
        render::header(
            "Fig. 10a — F-MAJ per-combination coverage (group C, frac in R1, init ones)"
        )
    );
    let mut mc = setup::controller(GroupId::C, setup::compute_geometry(), seed);
    let geometry = *mc.module().geometry();
    let quad = Quad::canonical(&geometry, SubarrayAddr::new(0, 0), GroupId::C).expect("quad");
    println!(
        "{:>6}  {}  overall",
        "#Frac",
        TEST_COMBINATIONS
            .iter()
            .map(|c| format!(
                "{:>9}",
                c.iter()
                    .map(|&b| if b { '1' } else { '0' })
                    .collect::<String>()
            ))
            .collect::<String>()
    );
    for frac_ops in 0..=5 {
        let config = FmajConfig {
            frac_role: 0,
            init_ones: true,
            frac_ops,
        };
        let b = combo_breakdown(&mut mc, &quad, &config).expect("breakdown");
        println!(
            "{:>6}  {}  {:>7.3}",
            frac_ops,
            b.per_combo
                .iter()
                .map(|p| format!("{p:>9.3}"))
                .collect::<String>(),
            b.overall
        );
    }
    println!("(combos with majority 1 start near 100% at 0 Frac; majority-0 combos start low");
    println!(" and rise as Frac drains the R1 charge — the Fig. 10a green/blue crossover)\n");

    // ---- (b)/(c) stability CDFs over the fleet ------------------------
    println!(
        "{}",
        render::header("Fig. 10b/c — stability over random-input trials")
    );
    println!("trials per sub-array: {trials}\n");

    let mut plan = Vec::new();
    for group in [GroupId::B, GroupId::C] {
        for m in 0..modules {
            for s in 0..subarrays {
                plan.push(TaskKey::new(group, m, s));
            }
        }
    }
    let run = fleet::run_with(&plan, seed, jobs, policy, |key, task_seed| {
        let mut mc = setup::controller(
            key.group,
            setup::compute_geometry(),
            seed + 100 + key.module as u64,
        );
        let geometry = *mc.module().geometry();
        let sa = SubarrayAddr::new(key.subarray % geometry.banks, key.subarray / geometry.banks);
        let quad = Quad::canonical(&geometry, sa, key.group).expect("quad");
        let config = FmajConfig::best_for(key.group);
        let mut rng = Rng::seed_from_u64(task_seed);
        let fmaj = tasks::stability_fmaj(&mut mc, &quad, &config, trials, &mut rng);
        let maj3 = (key.group == GroupId::B).then(|| {
            let triplet = Triplet::first(&geometry, sa);
            tasks::stability_maj3(&mut mc, &triplet, trials, &mut rng)
        });
        setup::reclaim_caches(&mut mc);
        (Stability { fmaj, maj3 }, mc.metrics())
    });
    eprintln!("{}", run.summary());

    for group in [GroupId::B, GroupId::C] {
        println!("group {group}:");
        let config = FmajConfig::best_for(group);
        let mut fmaj_stab = Vec::new();
        let mut maj3_stab = Vec::new();
        for report in run.tasks.iter().filter(|t| t.key.group == group) {
            fmaj_stab.extend_from_slice(&report.value().fmaj);
            if let Some(maj3) = &report.value().maj3 {
                maj3_stab.extend_from_slice(maj3);
            }
        }
        if !maj3_stab.is_empty() {
            print_cdf("MAJ3 baseline", &maj3_stab);
        }
        print_cdf(&format!("F-MAJ ({config:?})"), &fmaj_stab);
        println!();
    }

    if let Some(path) = args.json_path() {
        run.write_json("fig10_fmaj_stability", path, |v| {
            let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
            let mut obj = Json::obj().field("fmaj_mean", mean(&v.fmaj));
            if let Some(maj3) = &v.maj3 {
                obj = obj.field("maj3_mean", mean(maj3));
            }
            obj
        })
        .unwrap_or_else(|err| fracdram_experiments::exit_json_write_error(path, &err));
    }

    println!("paper: group B F-MAJ has >= 95.4% always-correct columns and the");
    println!("average error rate improves from 9.1% (MAJ3) to 2.2% (F-MAJ);");
    println!("group C modules span ~33-85% always-correct columns.");

    if run.failed() > 0 {
        std::process::exit(1);
    }
}
