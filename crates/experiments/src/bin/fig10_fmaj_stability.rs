//! **Figure 10**: (a) the per-input-combination F-MAJ breakdown on group
//! C (fractional value in R1, initial ones), and (b)/(c) the stability
//! CDFs of F-MAJ on groups B and C — per-column success rate over many
//! trials with random inputs — against the group-B MAJ3 baseline.
//!
//! The headline numbers this regenerates: the average error rate of
//! in-memory majority drops from ~9 % (MAJ3) to ~2 % (F-MAJ) on group B.
//!
//! ```text
//! cargo run --release -p fracdram-experiments --bin fig10_fmaj_stability [-- --trials N]
//! ```

use fracdram::fmaj::{combo_breakdown, fmaj, FmajConfig};
use fracdram::maj3::{maj3, TEST_COMBINATIONS};
use fracdram::rowsets::{Quad, Triplet};
use fracdram_experiments::{render, setup, Args};
use fracdram_model::{GroupId, SubarrayAddr};
use fracdram_softmc::MemoryController;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-column success counts over repeated random-input trials.
fn stability_fmaj(
    mc: &mut MemoryController,
    quad: &Quad,
    config: &FmajConfig,
    trials: usize,
    rng: &mut StdRng,
) -> Vec<f64> {
    let width = mc.module().row_bits();
    let mut correct = vec![0usize; width];
    for _ in 0..trials {
        let a: Vec<bool> = (0..width).map(|_| rng.gen()).collect();
        let b: Vec<bool> = (0..width).map(|_| rng.gen()).collect();
        let c: Vec<bool> = (0..width).map(|_| rng.gen()).collect();
        let result = fmaj(mc, quad, config, [&a, &b, &c]).expect("fmaj");
        for col in 0..width {
            let expect = [a[col], b[col], c[col]].iter().filter(|&&x| x).count() >= 2;
            if result[col] == expect {
                correct[col] += 1;
            }
        }
    }
    correct
        .into_iter()
        .map(|c| c as f64 / trials as f64)
        .collect()
}

/// Per-column success rates for the baseline MAJ3 under random inputs.
fn stability_maj3(
    mc: &mut MemoryController,
    triplet: &Triplet,
    trials: usize,
    rng: &mut StdRng,
) -> Vec<f64> {
    let width = mc.module().row_bits();
    let mut correct = vec![0usize; width];
    for _ in 0..trials {
        let a: Vec<bool> = (0..width).map(|_| rng.gen()).collect();
        let b: Vec<bool> = (0..width).map(|_| rng.gen()).collect();
        let c: Vec<bool> = (0..width).map(|_| rng.gen()).collect();
        let result = maj3(mc, triplet, [&a, &b, &c]).expect("maj3");
        for col in 0..width {
            let expect = [a[col], b[col], c[col]].iter().filter(|&&x| x).count() >= 2;
            if result[col] == expect {
                correct[col] += 1;
            }
        }
    }
    correct
        .into_iter()
        .map(|c| c as f64 / trials as f64)
        .collect()
}

fn print_cdf(label: &str, stability: &[f64]) {
    let mut sorted = stability.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let always = sorted.iter().filter(|&&s| s >= 1.0).count() as f64 / sorted.len() as f64;
    let avg_err = 1.0 - sorted.iter().sum::<f64>() / sorted.len() as f64;
    let q = |p: f64| sorted[((sorted.len() - 1) as f64 * p) as usize];
    println!(
        "  {label:<24} always-correct {:>6}   avg error {:>6}   p1/p10/p50 stability {:.3}/{:.3}/{:.3}",
        render::pct(always),
        render::pct(avg_err),
        q(0.01),
        q(0.10),
        q(0.50),
    );
}

fn main() {
    let args = Args::parse();
    if args.usage(
        "fig10_fmaj_stability",
        "reproduce Fig. 10: per-combo breakdown + stability CDFs",
        &[
            (
                "trials",
                "random-input trials per sub-array (default 200; paper: 10000)",
            ),
            (
                "subarrays",
                "sub-arrays sampled per module (default 4; paper: 500)",
            ),
            ("modules", "modules per group (default 2)"),
            ("seed", "base seed (default 10)"),
        ],
    ) {
        return;
    }
    let trials = args.usize("trials", 200);
    let subarrays = args.usize("subarrays", 4);
    let modules = args.usize("modules", 2);
    let seed = args.u64("seed", 10);

    // ---- (a) per-combination breakdown, group C, frac in R1, ones ----
    println!(
        "{}",
        render::header(
            "Fig. 10a — F-MAJ per-combination coverage (group C, frac in R1, init ones)"
        )
    );
    let mut mc = setup::controller(GroupId::C, setup::compute_geometry(), seed);
    let geometry = *mc.module().geometry();
    let quad = Quad::canonical(&geometry, SubarrayAddr::new(0, 0), GroupId::C).expect("quad");
    println!(
        "{:>6}  {}  overall",
        "#Frac",
        TEST_COMBINATIONS
            .iter()
            .map(|c| format!(
                "{:>9}",
                c.iter()
                    .map(|&b| if b { '1' } else { '0' })
                    .collect::<String>()
            ))
            .collect::<String>()
    );
    for frac_ops in 0..=5 {
        let config = FmajConfig {
            frac_role: 0,
            init_ones: true,
            frac_ops,
        };
        let b = combo_breakdown(&mut mc, &quad, &config).expect("breakdown");
        println!(
            "{:>6}  {}  {:>7.3}",
            frac_ops,
            b.per_combo
                .iter()
                .map(|p| format!("{p:>9.3}"))
                .collect::<String>(),
            b.overall
        );
    }
    println!("(combos with majority 1 start near 100% at 0 Frac; majority-0 combos start low");
    println!(" and rise as Frac drains the R1 charge — the Fig. 10a green/blue crossover)\n");

    // ---- (b)/(c) stability CDFs --------------------------------------
    println!(
        "{}",
        render::header("Fig. 10b/c — stability over random-input trials")
    );
    println!("trials per sub-array: {trials}\n");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
    for group in [GroupId::B, GroupId::C] {
        println!("group {group}:");
        let config = FmajConfig::best_for(group);
        let mut fmaj_stab = Vec::new();
        let mut maj3_stab = Vec::new();
        for m in 0..modules {
            let mut mc = setup::controller(group, setup::compute_geometry(), seed + 100 + m as u64);
            let geometry = *mc.module().geometry();
            for s in 0..subarrays {
                let sa = SubarrayAddr::new(s % geometry.banks, s / geometry.banks);
                let quad = Quad::canonical(&geometry, sa, group).expect("quad");
                fmaj_stab.extend(stability_fmaj(&mut mc, &quad, &config, trials, &mut rng));
                if group == GroupId::B {
                    let triplet = Triplet::first(&geometry, sa);
                    maj3_stab.extend(stability_maj3(&mut mc, &triplet, trials, &mut rng));
                }
            }
        }
        if !maj3_stab.is_empty() {
            print_cdf("MAJ3 baseline", &maj3_stab);
        }
        print_cdf(&format!("F-MAJ ({config:?})"), &fmaj_stab);
        println!();
    }
    println!("paper: group B F-MAJ has >= 95.4% always-correct columns and the");
    println!("average error rate improves from 9.1% (MAJ3) to 2.2% (F-MAJ);");
    println!("group C modules span ~33-85% always-correct columns.");
}
