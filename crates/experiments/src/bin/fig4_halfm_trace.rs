//! **Figure 4**: cell voltages in three different columns during a
//! Half-m operation — the weak one, the weak zero, and the Half value.
//!
//! Three probes watch one cell of `R1` in three columns whose initial
//! quad contents are all-ones, all-zeros, and the balanced
//! two-ones/two-zeros pattern respectively.
//!
//! ```text
//! cargo run --release -p fracdram-experiments --bin fig4_halfm_trace
//! ```

use fracdram::halfm::{halfm_in_place, halfm_program};
use fracdram::rowsets::Quad;
use fracdram_experiments::{render, setup, Args};
use fracdram_model::{GroupId, SubarrayAddr};

fn main() {
    let args = Args::parse();
    if args.usage(
        "fig4_halfm_trace",
        "reproduce Fig. 4: cell voltages during Half-m (weak 1 / weak 0 / Half)",
        &[
            ("seed", "die seed (default 4)"),
            ("intra-jobs", "chip-parallel workers per module (default 1)"),
            ("sched", "cross-bank batch scheduling: on|off (default on)"),
        ],
    ) {
        return;
    }
    let seed = args.u64("seed", 4);
    setup::set_intra_jobs(args.intra_jobs());
    setup::set_sched(args.sched());
    args.reject_unknown();

    let mut mc = setup::controller(GroupId::B, setup::compute_geometry(), seed);
    let geometry = *mc.module().geometry();
    let quad = Quad::canonical(&geometry, SubarrayAddr::new(0, 0), GroupId::B).expect("quad");
    let rows = quad.rows(&geometry);
    let width = mc.module().row_bits();

    // Column roles: 0 = all ones (weak one), 1 = all zeros (weak zero),
    // 2 = balanced (Half). Written as physical values per §II-C, so the
    // probes see clean rails regardless of column polarity.
    let balanced_one = [true, false, true, false]; // R1, R2, R3, R4
    for (slot, row) in rows.iter().enumerate() {
        let physical: Vec<bool> = (0..width)
            .map(|col| match col % 3 {
                0 => true,
                1 => false,
                _ => balanced_one[slot],
            })
            .collect();
        // Convert desired physical values to logical bits.
        let to_logical = fracdram::frac::physical_pattern(&mut mc, *row, true);
        let bits: Vec<bool> = physical
            .iter()
            .zip(&to_logical)
            .map(|(&phys, &logical_of_physical_one)| {
                if phys {
                    logical_of_physical_one
                } else {
                    !logical_of_physical_one
                }
            })
            .collect();
        mc.write_row(*row, &bits).expect("init");
    }

    // Probe R1's cell in the three columns.
    for col in [0usize, 1, 2] {
        mc.module_mut().chip_mut(0).attach_probe(rows[0], col);
    }
    halfm_in_place(&mut mc, &quad).expect("halfm");
    let t = mc.clock();
    mc.module_mut().probe_cell_voltage(rows[0], 0, t);
    let samples = mc.module_mut().chip_mut(0).take_probe_samples(0, 0);

    println!(
        "{}",
        render::header("Fig. 4 — Half-m trajectories (group B quad {8,1,0,9}, Vdd = 1.5 V)")
    );
    let labels = [
        "all-ones column (weak 1)",
        "all-zeros column (weak 0)",
        "balanced column (Half)",
    ];
    for (probe, label) in samples.iter().zip(labels) {
        println!("\n{label}:");
        println!(
            "{:>8}  {:>8}  {:>9}  event",
            "cycle", "cell (V)", "bit-line"
        );
        let base = probe.first().map_or(0, |s| s.cycle);
        for s in probe {
            println!(
                "{:>8}  {:>8.3}  {:>9.3}  {:?}",
                s.cycle - base,
                s.cell_v.value(),
                s.bitline_v.value(),
                s.event
            );
        }
    }
    let p = halfm_program(&quad, &geometry);
    println!(
        "\nHalf-m program: {} commands, {} total",
        p.len(),
        p.total_cycles()
    );
    println!("expected shape: weak 1 stays above Vdd/2, weak 0 below, Half lands near Vdd/2;");
    println!("the trailing PRECHARGE closes the rows before any sense event appears.");
}
