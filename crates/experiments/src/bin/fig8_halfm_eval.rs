//! **Figure 8**: evaluation of Half-m on group B — retention profiles of
//! the "weak one" and the Half value (against a 5×Frac reference), and
//! the MAJ3 verification of the values left in rows 0 and 1.
//!
//! The retention profiles track one quad on one die and stay serial;
//! the MAJ3 verification scan fans out over the fleet with one task per
//! (initialization, sub-array) cell.
//!
//! ```text
//! cargo run --release -p fracdram-experiments --bin fig8_halfm_eval [-- --subarrays N --jobs N]
//! ```

use fracdram::frac::{frac_program, physical_pattern};
use fracdram::halfm::halfm_in_place;
use fracdram::maj3::maj3_in_place;
use fracdram::retention::{BucketCounts, RetentionBucket};
use fracdram::rowsets::{Quad, Triplet};
use fracdram_experiments::{fleet, render, setup, Args, Json, TaskKey};
use fracdram_model::{GroupId, RowAddr, Seconds, SubarrayAddr};
use fracdram_softmc::MemoryController;

/// Quad initialization flavors.
#[derive(Clone, Copy, PartialEq)]
enum Init {
    /// Physical Vdd in all four rows (weak ones after Half-m).
    AllOnes,
    /// Physical ground in all four rows (weak zeros after Half-m).
    AllZeros,
    /// Two ones, two zeros per column (Half value after Half-m).
    Balanced,
}

/// The three verification scans, in figure order.
const SCANS: [(&str, Init, &str); 3] = [
    ("weak ones", Init::AllOnes, "(1,1)"),
    ("weak zeros", Init::AllZeros, "(0,0)"),
    ("Half value", Init::Balanced, "(1,0) = distinguishable Half"),
];

fn write_quad(mc: &mut MemoryController, quad: &Quad, init: Init) {
    let geometry = *mc.module().geometry();
    let balanced_one = [true, false, true, false];
    for (slot, row) in quad.rows(&geometry).into_iter().enumerate() {
        let physical = match init {
            Init::AllOnes => true,
            Init::AllZeros => false,
            Init::Balanced => balanced_one[slot],
        };
        let bits = physical_pattern(mc, row, physical);
        mc.write_row(row, &bits).expect("quad init");
    }
}

/// Retention buckets of `watch_row` after a preparation step, where a
/// cell "survives" while it still reads as physical one.
fn measure<F>(mc: &mut MemoryController, watch_row: RowAddr, mut prepare: F) -> Vec<RetentionBucket>
where
    F: FnMut(&mut MemoryController),
{
    let delays = [
        Seconds(0.001),
        Seconds::from_minutes(10.0),
        Seconds::from_minutes(30.0),
        Seconds::from_minutes(60.0),
        Seconds::from_hours(12.0),
    ];
    let ones = physical_pattern(mc, watch_row, true);
    let width = ones.len();
    let mut buckets = vec![RetentionBucket::Over12Hours; width];
    let mut alive = vec![true; width];
    for (probe, delay) in delays.into_iter().enumerate() {
        prepare(mc);
        mc.wait_seconds(delay);
        let read = mc.read_row(watch_row).expect("probe read");
        for col in 0..width {
            if alive[col] && read[col] != ones[col] {
                alive[col] = false;
                buckets[col] = RetentionBucket::ALL[probe];
            }
        }
    }
    buckets
}

/// One verification task: the (probe=1, probe=0) MAJ3 result pairs for
/// one initialization on one sub-array.
fn verify_pairs(
    mc: &mut MemoryController,
    subarray: SubarrayAddr,
    init: Init,
) -> Vec<(bool, bool)> {
    let geometry = *mc.module().geometry();
    let quad = Quad::canonical(&geometry, subarray, GroupId::B).expect("quad");
    let triplet = Triplet::first(&geometry, subarray);
    let probe_row = triplet.rows(&geometry)[1]; // local row 2 = role R2
    let anti: Vec<bool> = physical_pattern(mc, probe_row, true)
        .into_iter()
        .map(|b| !b)
        .collect();
    let mut run = |probe: bool| -> Vec<bool> {
        write_quad(mc, &quad, init);
        halfm_in_place(mc, &quad).expect("halfm");
        let bits = physical_pattern(mc, probe_row, probe);
        mc.write_row(probe_row, &bits).expect("probe write");
        maj3_in_place(mc, &triplet)
            .expect("maj3")
            .into_iter()
            .zip(&anti)
            .map(|(b, &a)| b ^ a)
            .collect()
    };
    let x1 = run(true);
    let x2 = run(false);
    x1.into_iter().zip(x2).collect()
}

fn print_profile(label: &str, buckets: &[RetentionBucket]) {
    let pdf = BucketCounts::from_buckets(buckets).pdf();
    let cells: String = (0..6).map(|rank| render::shade(pdf[rank])).collect();
    let detail: String = (0..6)
        .map(|rank| format!("{:>6}", render::pct(pdf[rank])))
        .collect();
    println!("  {label:<22} |{cells}|  {detail}");
}

fn main() {
    let args = Args::parse();
    if args.usage(
        "fig8_halfm_eval",
        "reproduce Fig. 8: Half-m retention + MAJ3 verification (group B)",
        &[
            (
                "subarrays",
                "sub-arrays scanned for the MAJ3 part (default 4)",
            ),
            ("seed", "die seed (default 8)"),
            ("jobs", "fleet worker threads (default: all cores)"),
            ("intra-jobs", "chip-parallel workers per module (default 1)"),
            ("sched", "cross-bank batch scheduling: on|off (default on)"),
            ("retries", "extra attempts for a failing task (default 0)"),
            ("keep-going", "complete remaining tasks after a failure"),
            ("fail-fast", "stop claiming tasks after a failure (default)"),
            ("json", "write structured fleet results to PATH"),
        ],
    ) {
        return;
    }
    let subarrays = args.usize("subarrays", 4);
    let seed = args.u64("seed", 8);
    setup::set_intra_jobs(args.intra_jobs());
    setup::set_sched(args.sched());
    let jobs = args.jobs();
    let policy = args.failure_policy();
    args.reject_unknown();

    let mut mc = setup::controller(GroupId::B, setup::compute_geometry(), seed);
    let geometry = *mc.module().geometry();
    let sa = SubarrayAddr::new(0, 0);
    let quad = Quad::canonical(&geometry, sa, GroupId::B).expect("quad");
    // Row 0 (role R3) holds the generated value and is also row 0 of the
    // verification triplet, exactly as in the paper.
    let watch = quad.rows(&geometry)[2];

    println!(
        "{}",
        render::header("Fig. 8 — Half-m evaluation (group B, quad {8,1,0,9})")
    );
    println!("\nretention PDFs over buckets [0 | 0-10m | 10-30m | 30-60m | 1-12h | >12h]:");

    let q = quad;
    let normal = measure(&mut mc, watch, |mc| {
        let bits = physical_pattern(mc, watch, true);
        mc.write_row(watch, &bits).expect("write");
    });
    print_profile("normal ones", &normal);

    let weak_ones = measure(&mut mc, watch, |mc| {
        write_quad(mc, &q, Init::AllOnes);
        halfm_in_place(mc, &q).expect("halfm");
    });
    print_profile("weak ones (Half-m)", &weak_ones);

    let half = measure(&mut mc, watch, |mc| {
        write_quad(mc, &q, Init::Balanced);
        halfm_in_place(mc, &q).expect("halfm");
    });
    print_profile("Half value (Half-m)", &half);

    let frac5 = measure(&mut mc, watch, |mc| {
        let bits = physical_pattern(mc, watch, true);
        mc.write_row(watch, &bits).expect("write");
        mc.run(&frac_program(watch, 5)).expect("frac");
    });
    print_profile("5x Frac reference", &frac5);

    // ---- MAJ3 verification of the Half-m products over the fleet ----
    println!("\nMAJ3 results on rows {{0,1}} + probe row 2:");
    let mut plan = Vec::new();
    for (variant, _) in SCANS.iter().enumerate() {
        for s in 0..subarrays {
            plan.push(TaskKey::new(GroupId::B, 0, s).with_variant(variant));
        }
    }
    let run = fleet::run_with(&plan, seed, jobs, policy, |key, _seed| {
        // Same die seed as the retention part: every task probes the
        // module under test on a fresh controller.
        let mut mc = setup::controller(GroupId::B, setup::compute_geometry(), seed);
        let geometry = *mc.module().geometry();
        let subarray =
            SubarrayAddr::new(key.subarray % geometry.banks, key.subarray / geometry.banks);
        let init = SCANS[key.variant].1;
        let pairs = verify_pairs(&mut mc, subarray, init);
        setup::reclaim_caches(&mut mc);
        (pairs, mc.metrics())
    });
    eprintln!("{}", run.summary());

    for (variant, (label, _, expect)) in SCANS.iter().enumerate() {
        let pairs: Vec<(bool, bool)> = run
            .tasks
            .iter()
            .filter(|t| t.key.variant == variant)
            .flat_map(|t| t.value().iter().copied())
            .collect();
        let total = pairs.len() as f64;
        let share =
            |a: bool, b: bool| pairs.iter().filter(|&&p| p == (a, b)).count() as f64 / total;
        println!(
            "  {label:<12} (1,1) {:>6}  (0,0) {:>6}  (1,0) {:>6}  (0,1) {:>6}   expect {expect}",
            render::pct(share(true, true)),
            render::pct(share(false, false)),
            render::pct(share(true, false)),
            render::pct(share(false, true)),
        );
    }

    if let Some(path) = args.json_path() {
        run.write_json("fig8_halfm_eval", path, |pairs| {
            let half = pairs.iter().filter(|&&p| p == (true, false)).count();
            Json::obj()
                .field("pairs", pairs.len())
                .field("half_signature", half)
        })
        .unwrap_or_else(|err| fracdram_experiments::exit_json_write_error(path, &err));
    }

    println!("\npaper: weak ones/zeros behave like normal values; ~16% of columns");
    println!("produce a distinguishable Half value ((1,0) signature).");

    if run.failed() > 0 {
        std::process::exit(1);
    }
}
