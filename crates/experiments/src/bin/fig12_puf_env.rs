//! **Figure 12**: Frac-PUF robustness to environmental changes — the
//! intra-/inter-HD distributions when the fresh responses are collected
//! at (a) a reduced supply voltage (1.4 V) and (b) elevated
//! temperatures (40/60/80 °C), compared against enrollment responses
//! taken at nominal conditions (20 °C, 1.5 V).
//!
//! ```text
//! cargo run --release -p fracdram-experiments --bin fig12_puf_env [-- --challenges N]
//! ```

use fracdram::puf::{challenge_set, evaluate};
use fracdram_experiments::{render, setup, Args};
use fracdram_model::{Environment, GroupId, Volts};
use fracdram_stats::bits::BitVec;
use fracdram_stats::hamming::normalized_distance;
use fracdram_stats::Summary;

fn main() {
    let args = Args::parse();
    if args.usage(
        "fig12_puf_env",
        "reproduce Fig. 12: PUF HD under supply-voltage and temperature changes",
        &[
            ("challenges", "challenges per module (default 16)"),
            ("modules", "modules per group (default 2)"),
            ("cols", "columns per chip row (default 1024)"),
            ("seed", "base seed (default 12)"),
        ],
    ) {
        return;
    }
    let n_challenges = args.usize("challenges", 16);
    let modules = args.usize("modules", 2);
    let cols = args.usize("cols", 1024);
    let seed = args.u64("seed", 12);

    let geometry = setup::puf_geometry(cols);
    let challenges = challenge_set(&geometry, n_challenges, seed);
    let groups: Vec<GroupId> = GroupId::frac_capable_groups().collect();

    // Enrollment at nominal conditions.
    let mut enrolled: Vec<Vec<Vec<BitVec>>> = Vec::new(); // [group][module][challenge]
    for &group in &groups {
        let mut per_group = Vec::new();
        for m in 0..modules {
            let mut mc = setup::controller(group, geometry, seed + m as u64);
            per_group.push(
                challenges
                    .iter()
                    .map(|&c| evaluate(&mut mc, c).expect("puf"))
                    .collect::<Vec<_>>(),
            );
        }
        enrolled.push(per_group);
    }

    let conditions = [
        (
            "1.4 V, 20 C (Fig. 12a)",
            Environment::nominal().with_vdd(Volts(1.4)),
        ),
        ("1.5 V, 40 C", Environment::nominal().with_temperature(40.0)),
        ("1.5 V, 60 C", Environment::nominal().with_temperature(60.0)),
        (
            "1.5 V, 80 C (Fig. 12b)",
            Environment::nominal().with_temperature(80.0),
        ),
    ];

    println!(
        "{}",
        render::header("Fig. 12 — Frac-PUF under environmental changes")
    );
    println!("enrollment at 20 C / 1.5 V; fresh responses under each condition\n");
    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>10}   verdict",
        "condition", "max intra", "mean intra", "min inter", "mean inter"
    );
    for (label, env) in conditions {
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        let mut fresh_all: Vec<Vec<BitVec>> = Vec::new();
        for (gi, &group) in groups.iter().enumerate() {
            for (m, enrolled_module) in enrolled[gi].iter().enumerate() {
                let mut mc = setup::controller(group, geometry, seed + m as u64);
                mc.module_mut().set_environment(env);
                let fresh: Vec<BitVec> = challenges
                    .iter()
                    .map(|&c| evaluate(&mut mc, c).expect("puf"))
                    .collect();
                for (a, b) in enrolled_module.iter().zip(&fresh) {
                    intra.push(normalized_distance(a, b));
                }
                fresh_all.push(fresh);
            }
        }
        // Inter-HD: fresh vs *other* modules' enrollment (within and
        // across groups), same challenge.
        let flat_enrolled: Vec<&Vec<BitVec>> = enrolled.iter().flatten().collect();
        for (i, fresh) in fresh_all.iter().enumerate() {
            for (j, enr) in flat_enrolled.iter().enumerate() {
                if i == j {
                    continue;
                }
                for (a, b) in fresh.iter().zip(enr.iter()) {
                    inter.push(normalized_distance(a, b));
                }
            }
        }
        let si = Summary::of(&intra);
        let se = Summary::of(&inter);
        println!(
            "{:<24} {:>10.3} {:>10.3} {:>10.3} {:>10.3}   {}",
            label,
            si.max,
            si.mean,
            se.min,
            se.mean,
            if si.max < se.min {
                "separated"
            } else {
                "OVERLAP!"
            }
        );
    }
    println!("\npaper: highest intra-HD 0.07 at 1.4 V, lowest inter-HD 0.30; intra-HD");
    println!("grows slightly with temperature but stays far below the minimum inter-HD.");
}
