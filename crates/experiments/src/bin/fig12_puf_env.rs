//! **Figure 12**: Frac-PUF robustness to environmental changes — the
//! intra-/inter-HD distributions when the fresh responses are collected
//! at (a) a reduced supply voltage (1.4 V) and (b) elevated
//! temperatures (40/60/80 °C), compared against enrollment responses
//! taken at nominal conditions (20 °C, 1.5 V).
//!
//! Enrollment and every condition's fresh responses are all independent
//! PUF sessions, so the whole figure runs as one fleet: variant 0 is
//! enrollment, variants 1..=4 are the environmental conditions.
//!
//! ```text
//! cargo run --release -p fracdram-experiments --bin fig12_puf_env [-- --challenges N --jobs N]
//! ```

use fracdram::puf::{challenge_set, evaluate_set};
use fracdram_experiments::{fleet, render, setup, Args, Json, TaskKey};
use fracdram_model::{Environment, GroupId, Volts};
use fracdram_stats::bits::BitVec;
use fracdram_stats::hamming::normalized_distance;
use fracdram_stats::Summary;

fn main() {
    let args = Args::parse();
    if args.usage(
        "fig12_puf_env",
        "reproduce Fig. 12: PUF HD under supply-voltage and temperature changes",
        &[
            ("challenges", "challenges per module (default 16)"),
            ("modules", "modules per group (default 2)"),
            ("cols", "columns per chip row (default 1024)"),
            ("chips", "chips per module (default 1; paper rank: 8)"),
            ("seed", "base seed (default 12)"),
            ("jobs", "fleet worker threads (default: all cores)"),
            ("intra-jobs", "chip-parallel workers per module (default 1)"),
            ("sched", "cross-bank batch scheduling: on|off (default on)"),
            ("retries", "extra attempts for a failing task (default 0)"),
            ("keep-going", "complete remaining tasks after a failure"),
            ("fail-fast", "stop claiming tasks after a failure (default)"),
            ("json", "write structured fleet results to PATH"),
        ],
    ) {
        return;
    }
    let n_challenges = args.usize("challenges", 16);
    let modules = args.usize("modules", 2);
    let cols = args.usize("cols", 1024);
    let chips = args.usize("chips", 1);
    let seed = args.u64("seed", 12);
    setup::set_intra_jobs(args.intra_jobs());
    setup::set_sched(args.sched());
    let jobs = args.jobs();
    let policy = args.failure_policy();
    args.reject_unknown();

    let geometry = setup::puf_geometry(cols);
    let challenges = challenge_set(&geometry, n_challenges, seed);
    let groups: Vec<GroupId> = GroupId::frac_capable_groups().collect();

    let conditions = [
        (
            "1.4 V, 20 C (Fig. 12a)",
            Environment::nominal().with_vdd(Volts(1.4)),
        ),
        ("1.5 V, 40 C", Environment::nominal().with_temperature(40.0)),
        ("1.5 V, 60 C", Environment::nominal().with_temperature(60.0)),
        (
            "1.5 V, 80 C (Fig. 12b)",
            Environment::nominal().with_temperature(80.0),
        ),
    ];

    // Variant 0 = enrollment at nominal conditions; variants 1..=4 =
    // fresh responses under each environmental condition. Every session
    // is an independent controller, so all of them fan out together.
    let mut plan = Vec::new();
    for variant in 0..=conditions.len() {
        for &group in &groups {
            for m in 0..modules {
                plan.push(TaskKey::new(group, m, 0).with_variant(variant));
            }
        }
    }
    let run = fleet::run_with(&plan, seed, jobs, policy, |key, _seed| {
        let mut mc = setup::chips_controller(key.group, geometry, seed + key.module as u64, chips);
        if key.variant > 0 {
            mc.module_mut()
                .set_environment(conditions[key.variant - 1].1);
        }
        let responses = evaluate_set(&mut mc, &challenges).expect("puf");
        setup::reclaim_caches(&mut mc);
        (responses, mc.metrics())
    });
    eprintln!("{}", run.summary());

    // Enrollment responses, flattened in plan order (group-major, then
    // module) — the same device order every condition's tasks use.
    let enrolled: Vec<&Vec<BitVec>> = run
        .tasks
        .iter()
        .filter(|t| t.key.variant == 0)
        .map(|t| t.value())
        .collect();

    println!(
        "{}",
        render::header("Fig. 12 — Frac-PUF under environmental changes")
    );
    println!("enrollment at 20 C / 1.5 V; fresh responses under each condition\n");
    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>10}   verdict",
        "condition", "max intra", "mean intra", "min inter", "mean inter"
    );
    for (ci, (label, _)) in conditions.iter().enumerate() {
        let fresh_all: Vec<&Vec<BitVec>> = run
            .tasks
            .iter()
            .filter(|t| t.key.variant == ci + 1)
            .map(|t| t.value())
            .collect();
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for (i, fresh) in fresh_all.iter().enumerate() {
            for (a, b) in enrolled[i].iter().zip(fresh.iter()) {
                intra.push(normalized_distance(a, b));
            }
            // Inter-HD: fresh vs *other* modules' enrollment (within
            // and across groups), same challenge.
            for (j, enr) in enrolled.iter().enumerate() {
                if i == j {
                    continue;
                }
                for (a, b) in fresh.iter().zip(enr.iter()) {
                    inter.push(normalized_distance(a, b));
                }
            }
        }
        let si = Summary::of(&intra);
        let se = Summary::of(&inter);
        println!(
            "{:<24} {:>10.3} {:>10.3} {:>10.3} {:>10.3}   {}",
            label,
            si.max,
            si.mean,
            se.min,
            se.mean,
            if si.max < se.min {
                "separated"
            } else {
                "OVERLAP!"
            }
        );
    }

    if let Some(path) = args.json_path() {
        run.write_json("fig12_puf_env", path, |responses| {
            Json::obj().field("responses", responses.len())
        })
        .unwrap_or_else(|err| fracdram_experiments::exit_json_write_error(path, &err));
    }

    println!("\npaper: highest intra-HD 0.07 at 1.4 V, lowest inter-HD 0.30; intra-HD");
    println!("grows slightly with temperature but stays far below the minimum inter-HD.");

    if run.failed() > 0 {
        std::process::exit(1);
    }
}
