//! **Ablation study**: which model mechanism drives which paper result.
//!
//! DESIGN.md argues the reproduction is mechanistic — every headline
//! number should be traceable to one physical knob. This binary turns
//! each knob and shows the result moving:
//!
//! 1. static share-weight variation → F-MAJ/MAJ3 *coverage* (Fig. 9);
//! 2. temporal decoder jitter → majority *stability* (Fig. 10);
//! 3. per-cell charge injection → PUF challenge diversity (and NIST
//!    §VI-B2 viability);
//! 4. sense-offset group mean → PUF Hamming weight (Fig. 11).
//!
//! Every sweep point is an independent die, so each section runs as a
//! small fleet with the sweep index in the task's `variant` slot.
//!
//! ```text
//! cargo run --release -p fracdram-experiments --bin ablation [-- --jobs N]
//! ```

use fracdram::fmaj::{fmaj_coverage, FmajConfig};
use fracdram::maj3::maj3_coverage;
use fracdram::puf::{evaluate, Challenge};
use fracdram::rowsets::{Quad, Triplet};
use fracdram_experiments::{fleet, render, setup, tasks, Args, Json, TaskKey};
use fracdram_model::{DeviceParams, Geometry, GroupId, Module, ModuleConfig, SubarrayAddr, Volts};
use fracdram_softmc::MemoryController;
use fracdram_stats::hamming::normalized_distance;
use fracdram_stats::rng::Rng;

fn geometry() -> Geometry {
    Geometry {
        banks: 2,
        subarrays_per_bank: 2,
        rows_per_subarray: 32,
        columns: 512,
    }
}

fn controller_with(group: GroupId, seed: u64, params: DeviceParams) -> MemoryController {
    let mut mc = MemoryController::new(Module::new(ModuleConfig {
        group,
        seed,
        geometry: geometry(),
        chips: 1,
        params,
    }));
    mc.set_intra_jobs(setup::intra_jobs());
    mc.set_sched(setup::sched());
    mc
}

fn main() {
    let args = Args::parse();
    if args.usage(
        "ablation",
        "turn each model knob and watch the corresponding paper result move",
        &[
            ("seed", "base die seed (default 15)"),
            ("jobs", "fleet worker threads (default: all cores)"),
            ("intra-jobs", "chip-parallel workers per module (default 1)"),
            ("sched", "cross-bank batch scheduling: on|off (default on)"),
            ("retries", "extra attempts for a failing task (default 0)"),
            ("keep-going", "complete remaining tasks after a failure"),
            ("fail-fast", "stop claiming tasks after a failure (default)"),
            ("json", "write structured sweep results to PATH"),
        ],
    ) {
        return;
    }
    let seed = args.u64("seed", 15);
    setup::set_intra_jobs(args.intra_jobs());
    setup::set_sched(args.sched());
    let jobs = args.jobs();
    let policy = args.failure_policy();
    args.reject_unknown();

    // ---- 1. static weight variation vs coverage ----------------------
    println!(
        "{}",
        render::header("1. static share-weight sigma -> majority coverage (Fig. 9 driver)")
    );
    println!(
        "{:>8} {:>14} {:>14}",
        "sigma", "MAJ3 coverage", "F-MAJ coverage"
    );
    let weight_sigmas = [0.0, 0.03, 0.06, 0.12, 0.24];
    let plan: Vec<TaskKey> = (0..weight_sigmas.len())
        .map(|v| TaskKey::new(GroupId::B, 0, 0).with_variant(v))
        .collect();
    let coverage = fleet::run_with(&plan, seed, jobs, policy, |key, _seed| {
        let params = DeviceParams {
            share_weight_sigma: weight_sigmas[key.variant],
            ..DeviceParams::default()
        };
        let mut mc = controller_with(GroupId::B, seed, params);
        let g = *mc.module().geometry();
        let triplet = Triplet::first(&g, SubarrayAddr::new(0, 0));
        let quad = Quad::canonical(&g, SubarrayAddr::new(0, 1), GroupId::B).unwrap();
        let maj3 = maj3_coverage(&mut mc, &triplet).unwrap();
        let fm = fmaj_coverage(&mut mc, &quad, &FmajConfig::best_for(GroupId::B)).unwrap();
        ((maj3, fm), mc.metrics())
    });
    for report in &coverage.tasks {
        let (maj3, fm) = *report.value();
        println!(
            "{:>8.2} {maj3:>14.3} {fm:>14.3}",
            weight_sigmas[report.key.variant]
        );
    }
    println!("(coverage is limited by static variation; F-MAJ stays ahead of MAJ3)\n");

    // ---- 2. temporal jitter vs stability ------------------------------
    println!(
        "{}",
        render::header("2. temporal decoder jitter -> majority stability (Fig. 10 driver)")
    );
    println!(
        "{:>8} {:>16} {:>16}",
        "sigma", "always-correct", "avg error"
    );
    let jitter_sigmas = [0.0, 0.03, 0.06, 0.15];
    let plan: Vec<TaskKey> = (0..jitter_sigmas.len())
        .map(|v| TaskKey::new(GroupId::B, 0, 0).with_variant(v))
        .collect();
    let trials = 60;
    let stability = fleet::run_with(&plan, seed, jobs, policy, |key, _seed| {
        let params = DeviceParams {
            share_temporal_sigma: jitter_sigmas[key.variant],
            ..DeviceParams::default()
        };
        let mut mc = controller_with(GroupId::B, seed, params);
        let g = *mc.module().geometry();
        let quad = Quad::canonical(&g, SubarrayAddr::new(0, 0), GroupId::B).unwrap();
        let config = FmajConfig::best_for(GroupId::B);
        // Deliberately the same RNG seed at every sweep point: each
        // sigma sees the same operand sequence (a paired comparison).
        let mut rng = Rng::seed_from_u64(seed);
        let rates = tasks::stability_fmaj(&mut mc, &quad, &config, trials, &mut rng);
        let always = rates.iter().filter(|&&r| r >= 1.0).count() as f64 / rates.len() as f64;
        let avg_err = 1.0 - rates.iter().sum::<f64>() / rates.len() as f64;
        ((always, avg_err), mc.metrics())
    });
    for report in &stability.tasks {
        let (always, avg_err) = *report.value();
        println!(
            "{:>8.2} {:>16} {:>16}",
            jitter_sigmas[report.key.variant],
            render::pct(always),
            render::pct(avg_err)
        );
    }
    println!("(with zero jitter every column is deterministic: stability is binary)\n");

    // ---- 3. cell injection vs challenge diversity ----------------------
    println!(
        "{}",
        render::header("3. per-cell charge injection -> PUF challenge diversity (NIST driver)")
    );
    println!("{:>10} {:>22}", "sigma (V)", "same-subarray HD");
    let inject_sigmas = [0.0, 0.02, 0.05, 0.10];
    let plan: Vec<TaskKey> = (0..inject_sigmas.len())
        .map(|v| TaskKey::new(GroupId::B, 0, 0).with_variant(v))
        .collect();
    let diversity = fleet::run_with(&plan, seed, jobs, policy, |key, _seed| {
        let params = DeviceParams {
            cell_inject_sigma: Volts(inject_sigmas[key.variant]),
            ..DeviceParams::default()
        };
        let mut mc = controller_with(GroupId::B, seed, params);
        let r1 = evaluate(&mut mc, Challenge::new(0, 3)).unwrap();
        let r2 = evaluate(&mut mc, Challenge::new(0, 4)).unwrap();
        (normalized_distance(&r1, &r2), mc.metrics())
    });
    for report in &diversity.tasks {
        println!(
            "{:>10.2} {:>22.3}",
            inject_sigmas[report.key.variant],
            report.value()
        );
    }
    println!("(without injection, rows sharing sense amplifiers answer identically:");
    println!(" the challenge space collapses and the whitened stream turns periodic)\n");

    // ---- 4. sense-offset mean vs Hamming weight ------------------------
    println!(
        "{}",
        render::header("4. sense-offset group mean -> PUF Hamming weight (Fig. 11 driver)")
    );
    println!("{:>12} {:>16}", "mean (mV)", "Hamming weight");
    let plan: Vec<TaskKey> = [GroupId::A, GroupId::B, GroupId::E, GroupId::G]
        .into_iter()
        .map(|group| TaskKey::new(group, 0, 0))
        .collect();
    let weights = fleet::run_with(&plan, seed, jobs, policy, |key, _seed| {
        let mut mc = controller_with(key.group, seed, DeviceParams::default());
        let r = evaluate(&mut mc, Challenge::new(1, 7)).unwrap();
        (r.hamming_weight(), mc.metrics())
    });
    for report in &weights.tasks {
        println!(
            "{:>12.1} {:>16.3}",
            report.key.group.profile().sense_offset_mean.value() * 1000.0,
            report.value()
        );
    }
    println!("(larger positive offsets push more columns below threshold: fewer ones)");

    if let Some(path) = args.json_path() {
        let section = |name: &str, rows: Vec<Json>| {
            Json::obj()
                .field("section", name)
                .field("rows", Json::Arr(rows))
        };
        let doc = Json::obj()
            .field("experiment", "ablation")
            .field("base_seed", seed)
            .field(
                "sections",
                Json::Arr(vec![
                    section(
                        "share_weight_sigma",
                        coverage
                            .tasks
                            .iter()
                            .map(|t| {
                                Json::obj()
                                    .field("sigma", weight_sigmas[t.key.variant])
                                    .field("maj3_coverage", t.value().0)
                                    .field("fmaj_coverage", t.value().1)
                            })
                            .collect(),
                    ),
                    section(
                        "share_temporal_sigma",
                        stability
                            .tasks
                            .iter()
                            .map(|t| {
                                Json::obj()
                                    .field("sigma", jitter_sigmas[t.key.variant])
                                    .field("always_correct", t.value().0)
                                    .field("avg_error", t.value().1)
                            })
                            .collect(),
                    ),
                    section(
                        "cell_inject_sigma",
                        diversity
                            .tasks
                            .iter()
                            .map(|t| {
                                Json::obj()
                                    .field("sigma", inject_sigmas[t.key.variant])
                                    .field("hd", *t.value())
                            })
                            .collect(),
                    ),
                    section(
                        "sense_offset_mean",
                        weights
                            .tasks
                            .iter()
                            .map(|t| {
                                Json::obj()
                                    .field("group", t.key.group.to_string())
                                    .field("hamming_weight", *t.value())
                            })
                            .collect(),
                    ),
                ]),
            );
        std::fs::write(path, format!("{doc}\n"))
            .unwrap_or_else(|err| fracdram_experiments::exit_json_write_error(path, &err));
    }

    if coverage.failed() + stability.failed() + diversity.failed() + weights.failed() > 0 {
        std::process::exit(1);
    }
}
