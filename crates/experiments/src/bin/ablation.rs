//! **Ablation study**: which model mechanism drives which paper result.
//!
//! DESIGN.md argues the reproduction is mechanistic — every headline
//! number should be traceable to one physical knob. This binary turns
//! each knob and shows the result moving:
//!
//! 1. static share-weight variation → F-MAJ/MAJ3 *coverage* (Fig. 9);
//! 2. temporal decoder jitter → majority *stability* (Fig. 10);
//! 3. per-cell charge injection → PUF challenge diversity (and NIST
//!    §VI-B2 viability);
//! 4. sense-offset group mean → PUF Hamming weight (Fig. 11).
//!
//! ```text
//! cargo run --release -p fracdram-experiments --bin ablation
//! ```

use fracdram::fmaj::{fmaj, fmaj_coverage, FmajConfig};
use fracdram::maj3::maj3_coverage;
use fracdram::puf::{evaluate, Challenge};
use fracdram::rowsets::{Quad, Triplet};
use fracdram_experiments::{render, Args};
use fracdram_model::{DeviceParams, Geometry, GroupId, Module, ModuleConfig, SubarrayAddr, Volts};
use fracdram_softmc::MemoryController;
use fracdram_stats::hamming::normalized_distance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn geometry() -> Geometry {
    Geometry {
        banks: 2,
        subarrays_per_bank: 2,
        rows_per_subarray: 32,
        columns: 512,
    }
}

fn controller_with(group: GroupId, seed: u64, params: DeviceParams) -> MemoryController {
    MemoryController::new(Module::new(ModuleConfig {
        group,
        seed,
        geometry: geometry(),
        chips: 1,
        params,
    }))
}

fn main() {
    let args = Args::parse();
    if args.usage(
        "ablation",
        "turn each model knob and watch the corresponding paper result move",
        &[("seed", "base die seed (default 15)")],
    ) {
        return;
    }
    let seed = args.u64("seed", 15);

    // ---- 1. static weight variation vs coverage ----------------------
    println!(
        "{}",
        render::header("1. static share-weight sigma -> majority coverage (Fig. 9 driver)")
    );
    println!(
        "{:>8} {:>14} {:>14}",
        "sigma", "MAJ3 coverage", "F-MAJ coverage"
    );
    for sigma in [0.0, 0.03, 0.06, 0.12, 0.24] {
        let params = DeviceParams {
            share_weight_sigma: sigma,
            ..DeviceParams::default()
        };
        let mut mc = controller_with(GroupId::B, seed, params);
        let g = *mc.module().geometry();
        let triplet = Triplet::first(&g, SubarrayAddr::new(0, 0));
        let quad = Quad::canonical(&g, SubarrayAddr::new(0, 1), GroupId::B).unwrap();
        let maj3 = maj3_coverage(&mut mc, &triplet).unwrap();
        let fm = fmaj_coverage(&mut mc, &quad, &FmajConfig::best_for(GroupId::B)).unwrap();
        println!("{sigma:>8.2} {maj3:>14.3} {fm:>14.3}");
    }
    println!("(coverage is limited by static variation; F-MAJ stays ahead of MAJ3)\n");

    // ---- 2. temporal jitter vs stability ------------------------------
    println!(
        "{}",
        render::header("2. temporal decoder jitter -> majority stability (Fig. 10 driver)")
    );
    println!(
        "{:>8} {:>16} {:>16}",
        "sigma", "always-correct", "avg error"
    );
    for sigma in [0.0, 0.03, 0.06, 0.15] {
        let params = DeviceParams {
            share_temporal_sigma: sigma,
            ..DeviceParams::default()
        };
        let mut mc = controller_with(GroupId::B, seed, params);
        let g = *mc.module().geometry();
        let quad = Quad::canonical(&g, SubarrayAddr::new(0, 0), GroupId::B).unwrap();
        let config = FmajConfig::best_for(GroupId::B);
        let width = mc.module().row_bits();
        let trials = 60;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut correct = vec![0usize; width];
        for _ in 0..trials {
            let a: Vec<bool> = (0..width).map(|_| rng.gen()).collect();
            let b: Vec<bool> = (0..width).map(|_| rng.gen()).collect();
            let c: Vec<bool> = (0..width).map(|_| rng.gen()).collect();
            let result = fmaj(&mut mc, &quad, &config, [&a, &b, &c]).unwrap();
            for col in 0..width {
                let expect = [a[col], b[col], c[col]].iter().filter(|&&x| x).count() >= 2;
                if result[col] == expect {
                    correct[col] += 1;
                }
            }
        }
        let always = correct.iter().filter(|&&c| c == trials).count() as f64 / width as f64;
        let avg_err = 1.0
            - correct
                .iter()
                .map(|&c| c as f64 / trials as f64)
                .sum::<f64>()
                / width as f64;
        println!(
            "{sigma:>8.2} {:>16} {:>16}",
            render::pct(always),
            render::pct(avg_err)
        );
    }
    println!("(with zero jitter every column is deterministic: stability is binary)\n");

    // ---- 3. cell injection vs challenge diversity ----------------------
    println!(
        "{}",
        render::header("3. per-cell charge injection -> PUF challenge diversity (NIST driver)")
    );
    println!("{:>10} {:>22}", "sigma (V)", "same-subarray HD");
    for sigma in [0.0, 0.02, 0.05, 0.10] {
        let params = DeviceParams {
            cell_inject_sigma: Volts(sigma),
            ..DeviceParams::default()
        };
        let mut mc = controller_with(GroupId::B, seed, params);
        let r1 = evaluate(&mut mc, Challenge::new(0, 3)).unwrap();
        let r2 = evaluate(&mut mc, Challenge::new(0, 4)).unwrap();
        println!("{sigma:>10.2} {:>22.3}", normalized_distance(&r1, &r2));
    }
    println!("(without injection, rows sharing sense amplifiers answer identically:");
    println!(" the challenge space collapses and the whitened stream turns periodic)\n");

    // ---- 4. sense-offset mean vs Hamming weight ------------------------
    println!(
        "{}",
        render::header("4. sense-offset group mean -> PUF Hamming weight (Fig. 11 driver)")
    );
    println!("{:>12} {:>16}", "mean (mV)", "Hamming weight");
    for group in [GroupId::A, GroupId::B, GroupId::E, GroupId::G] {
        let mut mc = controller_with(group, seed, DeviceParams::default());
        let r = evaluate(&mut mc, Challenge::new(1, 7)).unwrap();
        println!(
            "{:>12.1} {:>16.3}",
            group.profile().sense_offset_mean.value() * 1000.0,
            r.hamming_weight()
        );
    }
    println!("(larger positive offsets push more columns below threshold: fewer ones)");
}
