//! **Figure 11**: the Frac-PUF intra-/inter-device Hamming distance
//! distributions per DRAM group, plus cross-group inter-HD and the
//! per-group response Hamming weights.
//!
//! Each module answers the same challenge set twice (intra-HD pairs its
//! two responses per challenge); inter-HD pairs responses to the same
//! challenge across modules. Response collection fans out over the
//! fleet with one task per (group, module); all HD analysis happens at
//! the merge, in plan order.
//!
//! ```text
//! cargo run --release -p fracdram-experiments --bin fig11_puf_hd [-- --challenges N --jobs N]
//! ```

use fracdram::puf::{challenge_set, evaluate_set};
use fracdram_experiments::{fleet, render, setup, Args, Json, TaskKey};
use fracdram_model::GroupId;
use fracdram_stats::bits::BitVec;
use fracdram_stats::hamming::normalized_distance;
use fracdram_stats::Summary;

/// One module's PUF session: two passes over the challenge set.
struct Responses {
    first: Vec<BitVec>,
    second: Vec<BitVec>,
}

fn main() {
    let args = Args::parse();
    if args.usage(
        "fig11_puf_hd",
        "reproduce Fig. 11: PUF intra-/inter-HD and Hamming weights",
        &[
            (
                "challenges",
                "challenges per module (default 24; paper: 120)",
            ),
            ("modules", "modules per group (default 2)"),
            (
                "cols",
                "columns per chip row (default 1024; paper row: 8192x8)",
            ),
            ("chips", "chips per module (default 1; paper rank: 8)"),
            ("seed", "base seed (default 11)"),
            ("jobs", "fleet worker threads (default: all cores)"),
            ("intra-jobs", "chip-parallel workers per module (default 1)"),
            ("sched", "cross-bank batch scheduling: on|off (default on)"),
            ("retries", "extra attempts for a failing task (default 0)"),
            ("keep-going", "complete remaining tasks after a failure"),
            ("fail-fast", "stop claiming tasks after a failure (default)"),
            ("json", "write structured fleet results to PATH"),
        ],
    ) {
        return;
    }
    let n_challenges = args.usize("challenges", 24);
    let modules = args.usize("modules", 2);
    let cols = args.usize("cols", 1024);
    let chips = args.usize("chips", 1);
    let seed = args.u64("seed", 11);
    setup::set_intra_jobs(args.intra_jobs());
    setup::set_sched(args.sched());
    let jobs = args.jobs();
    let policy = args.failure_policy();
    args.reject_unknown();

    let geometry = setup::puf_geometry(cols);
    let challenges = challenge_set(&geometry, n_challenges, seed);
    let groups: Vec<GroupId> = GroupId::frac_capable_groups().collect();

    println!(
        "{}",
        render::header("Fig. 11 — Frac-PUF Hamming distance distributions")
    );
    println!("challenges {n_challenges} x modules {modules} per group, {cols}-bit responses\n");
    println!(
        "{:<6} {:>8} {:>9} {:>9} {:>9} {:>9}   HW",
        "Group", "max", "mean", "min", "mean", "",
    );
    println!(
        "{:<6} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "", "intra", "intra", "inter", "inter", "",
    );

    let mut plan = Vec::new();
    for &group in &groups {
        for m in 0..modules {
            plan.push(TaskKey::new(group, m, 0));
        }
    }
    let run = fleet::run_with(&plan, seed, jobs, policy, |key, _seed| {
        let mut mc = setup::chips_controller(key.group, geometry, seed + key.module as u64, chips);
        let first = evaluate_set(&mut mc, &challenges).expect("puf");
        let second = evaluate_set(&mut mc, &challenges).expect("puf");
        setup::reclaim_caches(&mut mc);
        (Responses { first, second }, mc.metrics())
    });
    eprintln!("{}", run.summary());

    // responses[group][module][challenge] -> first evaluation.
    let mut first_by_group: Vec<Vec<&Vec<BitVec>>> = Vec::new();
    let mut global_max_intra: f64 = 0.0;
    let mut global_min_inter: f64 = 1.0;
    for &group in &groups {
        let reports: Vec<_> = run.tasks.iter().filter(|t| t.key.group == group).collect();
        let mut intra = Vec::new();
        let mut weights = Vec::new();
        let mut first = Vec::new();
        for report in &reports {
            for (a, b) in report.value().first.iter().zip(&report.value().second) {
                intra.push(normalized_distance(a, b));
            }
            weights.extend(report.value().first.iter().map(|r| r.hamming_weight()));
            first.push(&report.value().first);
        }
        // Inter-HD within the group: same challenge, different modules.
        let mut inter = Vec::new();
        for a in 0..first.len() {
            for b in a + 1..first.len() {
                for (ra, rb) in first[a].iter().zip(first[b].iter()) {
                    inter.push(normalized_distance(ra, rb));
                }
            }
        }
        let si = Summary::of(&intra);
        let se = Summary::of(&inter);
        let hw = Summary::of(&weights);
        global_max_intra = global_max_intra.max(si.max);
        global_min_inter = global_min_inter.min(se.min);
        println!(
            "{:<6} {:>8.3} {:>9.3} {:>9.3} {:>9.3} {:>9}   {:.2}",
            group.to_string(),
            si.max,
            si.mean,
            se.min,
            se.mean,
            "",
            hw.mean,
        );
        first_by_group.push(first);
    }

    // Cross-group inter-HD: same challenge, modules from different groups.
    let mut cross = Vec::new();
    for a in 0..first_by_group.len() {
        for b in a + 1..first_by_group.len() {
            for ma in &first_by_group[a] {
                for mb in &first_by_group[b] {
                    for (ra, rb) in ma.iter().zip(mb.iter()) {
                        cross.push(normalized_distance(ra, rb));
                    }
                }
            }
        }
    }
    let sc = Summary::of(&cross);
    global_min_inter = global_min_inter.min(sc.min);
    println!(
        "{:<6} {:>8} {:>9} {:>9.3} {:>9.3}",
        "cross", "", "", sc.min, sc.mean
    );

    if let Some(path) = args.json_path() {
        run.write_json("fig11_puf_hd", path, |v| {
            let mean_hw = v.first.iter().map(|r| r.hamming_weight()).sum::<f64>()
                / v.first.len().max(1) as f64;
            Json::obj()
                .field("responses", v.first.len())
                .field("mean_hamming_weight", mean_hw)
        })
        .unwrap_or_else(|err| fracdram_experiments::exit_json_write_error(path, &err));
    }

    println!("\nmax intra-HD (all groups) = {global_max_intra:.3} (paper max: 0.051)");
    println!("min inter-HD (all pairs)  = {global_min_inter:.3} (paper min: 0.27)");
    println!(
        "separation {}: every fresh response is closer to its own enrollment than to any other device",
        if global_max_intra < global_min_inter { "HOLDS" } else { "FAILS" }
    );
    println!("paper Hamming weights vary by group (e.g. group A ~0.21) — the bias");
    println!("tracks each vendor's sense-amplifier offset distribution.");

    if run.failed() > 0 {
        std::process::exit(1);
    }
}
