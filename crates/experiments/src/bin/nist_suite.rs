//! **§VI-B2 randomness validation**: run the full NIST SP 800-22 suite
//! (all 15 tests) on Von-Neumann-whitened Frac-PUF responses, per
//! module — the paper feeds one million whitened bits per module and
//! reports that all 15 tests pass.
//!
//! Each module's collection + suite run is one fleet task; reports
//! print in module order regardless of `--jobs`.
//!
//! ```text
//! cargo run --release -p fracdram-experiments --bin nist_suite [-- --bits 1000000 --jobs N]
//! ```

use fracdram::puf::{challenge_set, evaluate_set, whitened_stream};
use fracdram_experiments::{fleet, render, setup, Args, Json, TaskKey};
use fracdram_model::GroupId;
use fracdram_stats::bits::BitVec;
use fracdram_stats::nist;

/// One module's suite run, pre-rendered for plan-order printing.
struct ModuleReport {
    used_rows: usize,
    bits: usize,
    weight: f64,
    report: String,
    passed: bool,
}

fn main() {
    let args = Args::parse();
    if args.usage(
        "nist_suite",
        "run NIST SP 800-22 (15 tests) on whitened Frac-PUF output",
        &[
            (
                "bits",
                "whitened bits per module (default 450000; paper: 1000000)",
            ),
            ("modules", "modules tested (default 2)"),
            ("cols", "columns per chip row (default 4096)"),
            ("seed", "base seed (default 13)"),
            ("jobs", "fleet worker threads (default: all cores)"),
            ("intra-jobs", "chip-parallel workers per module (default 1)"),
            ("sched", "cross-bank batch scheduling: on|off (default on)"),
            ("retries", "extra attempts for a failing task (default 0)"),
            ("keep-going", "complete remaining tasks after a failure"),
            ("fail-fast", "stop claiming tasks after a failure (default)"),
            ("json", "write structured fleet results to PATH"),
        ],
    ) {
        return;
    }
    let target_bits = args.usize("bits", 450_000);
    let modules = args.usize("modules", 2);
    let cols = args.usize("cols", 4096);
    let seed = args.u64("seed", 13);
    setup::set_intra_jobs(args.intra_jobs());
    setup::set_sched(args.sched());
    let jobs = args.jobs();
    let policy = args.failure_policy();
    args.reject_unknown();

    // A roomy row space so every challenge addresses a distinct row —
    // re-evaluating a row reproduces (almost) the same response, and
    // duplicated material would show up as structure in the stream.
    let geometry = fracdram_model::Geometry {
        banks: 8,
        subarrays_per_bank: 4,
        rows_per_subarray: 64,
        columns: cols,
    };
    let capacity = geometry.banks * geometry.rows_per_bank();
    println!(
        "{}",
        render::header("NIST SP 800-22 on whitened Frac-PUF responses (§VI-B2)")
    );

    let groups = [GroupId::B, GroupId::A];
    let plan: Vec<TaskKey> = (0..modules)
        .map(|m| TaskKey::new(groups[m % groups.len()], m, 0))
        .collect();
    let run = fleet::run_with(&plan, seed, jobs, policy, |key, _seed| {
        let mut mc = setup::controller(key.group, geometry, seed + key.module as u64);
        // Draw the whole challenge budget up front, without replacement.
        let challenges = challenge_set(&geometry, capacity, seed);
        let mut whitened = BitVec::new();
        let mut used = 0;
        while whitened.len() < target_bits {
            assert!(
                used + 64 <= capacity,
                "row space exhausted at {} whitened bits; raise --cols or lower --bits",
                whitened.len()
            );
            let responses = evaluate_set(&mut mc, &challenges[used..used + 64]).expect("puf");
            used += 64;
            whitened.extend_from(&whitened_stream(&responses));
        }
        let stream = whitened.slice(0, target_bits.min(whitened.len()));
        let report = nist::run_all(&stream);
        let value = ModuleReport {
            used_rows: used,
            bits: stream.len(),
            weight: stream.hamming_weight(),
            passed: report.all_passed(),
            report: report.to_string(),
        };
        setup::reclaim_caches(&mut mc);
        (value, mc.metrics())
    });
    eprintln!("{}", run.summary());

    let mut all_passed = true;
    for report in &run.tasks {
        let v = &report.value();
        println!(
            "\nmodule {} (group {}): {} whitened bits from {} rows, weight {:.3}",
            report.key.module, report.key.group, v.bits, v.used_rows, v.weight
        );
        println!("{}", v.report);
        all_passed &= v.passed;
    }

    if let Some(path) = args.json_path() {
        run.write_json("nist_suite", path, |v| {
            Json::obj()
                .field("bits", v.bits)
                .field("used_rows", v.used_rows)
                .field("weight", v.weight)
                .field("passed", v.passed)
        })
        .unwrap_or_else(|err| fracdram_experiments::exit_json_write_error(path, &err));
    }

    println!(
        "\n=> {}",
        if all_passed {
            "every applicable test passed on every module (paper: all 15 pass)"
        } else {
            "FAILURES present — see individual p-values above"
        }
    );

    if run.failed() > 0 {
        std::process::exit(1);
    }
}
