//! **§VI-B2 randomness validation**: run the full NIST SP 800-22 suite
//! (all 15 tests) on Von-Neumann-whitened Frac-PUF responses, per
//! module — the paper feeds one million whitened bits per module and
//! reports that all 15 tests pass.
//!
//! ```text
//! cargo run --release -p fracdram-experiments --bin nist_suite [-- --bits 1000000]
//! ```

use fracdram::puf::{challenge_set, evaluate, whitened_stream};
use fracdram_experiments::{render, setup, Args};
use fracdram_model::GroupId;
use fracdram_stats::bits::BitVec;
use fracdram_stats::nist;

fn main() {
    let args = Args::parse();
    if args.usage(
        "nist_suite",
        "run NIST SP 800-22 (15 tests) on whitened Frac-PUF output",
        &[
            (
                "bits",
                "whitened bits per module (default 450000; paper: 1000000)",
            ),
            ("modules", "modules tested (default 2)"),
            ("cols", "columns per chip row (default 4096)"),
            ("seed", "base seed (default 13)"),
        ],
    ) {
        return;
    }
    let target_bits = args.usize("bits", 450_000);
    let modules = args.usize("modules", 2);
    let cols = args.usize("cols", 4096);
    let seed = args.u64("seed", 13);

    // A roomy row space so every challenge addresses a distinct row —
    // re-evaluating a row reproduces (almost) the same response, and
    // duplicated material would show up as structure in the stream.
    let geometry = fracdram_model::Geometry {
        banks: 8,
        subarrays_per_bank: 4,
        rows_per_subarray: 64,
        columns: cols,
    };
    let capacity = geometry.banks * geometry.rows_per_bank();
    println!(
        "{}",
        render::header("NIST SP 800-22 on whitened Frac-PUF responses (§VI-B2)")
    );

    let groups = [GroupId::B, GroupId::A];
    let mut all_passed = true;
    for m in 0..modules {
        let group = groups[m % groups.len()];
        let mut mc = setup::controller(group, geometry, seed + m as u64);
        // Draw the whole challenge budget up front, without replacement.
        let challenges = challenge_set(&geometry, capacity, seed);
        let mut whitened = BitVec::new();
        let mut used = 0;
        while whitened.len() < target_bits {
            assert!(
                used + 64 <= capacity,
                "row space exhausted at {} whitened bits; raise --cols or lower --bits",
                whitened.len()
            );
            let responses: Vec<BitVec> = challenges[used..used + 64]
                .iter()
                .map(|&c| evaluate(&mut mc, c).expect("puf"))
                .collect();
            used += 64;
            whitened.extend_from(&whitened_stream(&responses));
        }
        let stream = whitened.slice(0, target_bits.min(whitened.len()));
        println!(
            "\nmodule {m} (group {group}): {} whitened bits from {used} rows, weight {:.3}",
            stream.len(),
            stream.hamming_weight()
        );
        let report = nist::run_all(&stream);
        println!("{report}");
        all_passed &= report.all_passed();
    }
    println!(
        "\n=> {}",
        if all_passed {
            "every applicable test passed on every module (paper: all 15 pass)"
        } else {
            "FAILURES present — see individual p-values above"
        }
    );
}
