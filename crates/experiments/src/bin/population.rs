//! `population` — population-scale streaming fleet study.
//!
//! Streams die seeds through [`fracdram_experiments::fleet::run_stream`]
//! with O(1) memory per worker and answers three questions the paper's
//! 582-chip census couldn't: Frac-PUF inter-HD uniqueness and
//! birthday-bound collision probability at fleet scale, enrollment
//! database sizing, and a vendor/origin nearest-centroid classifier
//! over the 12 groups (the counterfeit-DRAM identification scenario).
//!
//! Aggregate stdout is byte-identical at any `--jobs N`: chunk
//! accumulators merge in ascending chunk order, the reservoir sample is
//! a pure function of `(seed, index)`, and the binary store is written
//! by the single-threaded reducer in chunk order. `--replay STORE`
//! re-aggregates a previous run's store — same chunk structure, same
//! merge tree, bit-identical aggregate block — without re-simulating.
//!
//! ```text
//! cargo run --release -p fracdram-experiments --bin population \
//!   [-- --dies 1M --chunk 2k --jobs 8 --store pop.bin]
//! ```

use std::cell::RefCell;
use std::path::PathBuf;
use std::time::Instant;

use fracdram_experiments::fleet::{item_seed, run_stream, StreamConfig};
use fracdram_experiments::population as pop;
use fracdram_experiments::store::{StoreHeader, StoreReader, StoreWriter, RECORD_LEN};
use fracdram_experiments::{render, setup, Args, Json};
use fracdram_model::GroupId;

/// Enrollment populations for the sizing table.
const ENROLL_SIZES: [(u64, &str); 6] = [
    (1_000, "1k"),
    (10_000, "10k"),
    (100_000, "100k"),
    (1_000_000, "1M"),
    (10_000_000, "10M"),
    (100_000_000, "100M"),
];

fn exit_store_error(what: &str, path: &std::path::Path, err: &std::io::Error) -> ! {
    eprintln!("error: could not {what} store {}: {err}", path.display());
    std::process::exit(1)
}

fn main() {
    let args = Args::parse();
    if args.usage(
        "population",
        "population-scale streaming study: Frac-PUF uniqueness, enrollment sizing, \
         vendor/origin classifier",
        &[
            ("dies", "dies to stream (k/M/G suffixes; default 2400)"),
            ("chunk", "dies per chunk (default 600)"),
            ("jobs", "worker threads (default: all cores)"),
            ("intra-jobs", "chip threads per module (default 1)"),
            ("sched", "cross-bank batch scheduling: on|off (default on)"),
            ("seed", "base seed (default 42)"),
            ("sample", "fingerprint reservoir capacity (default 256)"),
            ("store", "write the binary result store to this path"),
            ("replay", "re-aggregate an existing store (no simulation)"),
            ("json", "dump aggregates and counters as JSON"),
            ("bench-json", "write the population/dies_per_s bench record"),
        ],
    ) {
        return;
    }
    let seed = args.u64("seed", 42);
    let dies = args.u64("dies", 2400);
    let chunk = args.u64("chunk", 600);
    let jobs = args.jobs();
    let sample = args.usize("sample", 256);
    setup::set_intra_jobs(args.intra_jobs());
    setup::set_sched(args.sched());
    let store_arg = args.str("store").map(PathBuf::from);
    let replay_arg = args.str("replay").map(PathBuf::from);
    let json_path = args.json_path().map(String::from);
    let bench_json = args.str("bench-json").map(String::from);
    args.reject_unknown();

    // The classifier's second pass reads the store back, so simulation
    // always writes one; without --store it lives in a scratch path.
    let scratch = store_arg.is_none() && replay_arg.is_none();
    let store_path = replay_arg.clone().unwrap_or_else(|| {
        store_arg.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("fracdram_population_{}.bin", std::process::id()))
        })
    });

    let (accum, header, digest, records, sim_wall) = if replay_arg.is_some() {
        let (accum, header, digest, records) = replay(&store_path, sample);
        (accum, header, digest, records, None)
    } else {
        let (accum, header, digest, records, wall) =
            simulate(&store_path, seed, dies, chunk, jobs, sample);
        (accum, header, digest, records, Some(wall))
    };

    // ── aggregate block (byte-identical across jobs and replay) ──────
    println!(
        "population — streaming die fleet: Frac-PUF uniqueness, enrollment sizing, \
         vendor/origin classifier"
    );
    println!(
        "dies {}  chunk {}  seed {}  sample {}",
        header.dies, header.chunk, header.base_seed, sample
    );
    println!("store: {records} record(s), digest {digest:016x}\n");

    println!(
        "{}",
        render::header("per-group fingerprint features (mean ± std)")
    );
    println!(
        "{:<6}{:>8}  {:>15}  {:>15}  {:>15}  {:>15}",
        "group",
        "dies",
        pop::FEATURES[0],
        pop::FEATURES[1],
        pop::FEATURES[2],
        pop::FEATURES[3]
    );
    for (g, group) in accum.groups.iter().enumerate() {
        let cells: Vec<String> = (0..4)
            .map(|i| {
                format!(
                    "{:.4} ± {:.4}",
                    group.features[i].mean(),
                    group.features[i].std_dev()
                )
            })
            .collect();
        println!(
            "{:<6}{:>8}  {:>15}  {:>15}  {:>15}  {:>15}",
            GroupId::ALL[g].to_string(),
            group.count,
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
    }

    println!(
        "\n{}",
        render::header("PUF Hamming-weight distribution (frac-capable dies)")
    );
    let total_hist = accum.hw_hist.total().max(1);
    for i in 0..accum.hw_hist.counts().len() {
        let count = accum.hw_hist.counts()[i];
        if count == 0 {
            continue;
        }
        let share = count as f64 / total_hist as f64;
        println!(
            "[{:.2},{:.2})  {}  {count}",
            accum.hw_hist.bin_lo(i),
            accum.hw_hist.bin_hi(i),
            render::bar(share, 30)
        );
    }

    println!("\n{}", render::header("Frac-PUF population uniqueness"));
    let unique = pop::uniqueness(&accum.reservoir);
    match unique {
        Some(u) => {
            println!(
                "sampled {} of {} fingerprint(s) (seed-keyed reservoir), {} pair(s)",
                u.sampled, accum.puf_valid, u.pairs
            );
            println!(
                "inter-HD mean {:.4}  std {:.4}  min {:.4}  max {:.4}  (ideal 0.5)",
                u.mean_hd, u.std_hd, u.min_hd, u.max_hd
            );
            println!(
                "pair match probability {:.3e} (independent-bit model, {} bits)",
                u.p_match,
                pop::FINGERPRINT_BITS
            );

            println!(
                "\n{}",
                render::header("enrollment database sizing (birthday bound)")
            );
            println!(
                "{:<12}{:>14}{:>14}",
                "population", "P(collision)", "store bytes"
            );
            for (n, label) in ENROLL_SIZES {
                println!(
                    "{label:<12}{:>14.3e}{:>14}",
                    pop::collision_probability(n, u.p_match),
                    n * RECORD_LEN as u64
                );
            }
        }
        None => println!("not enough frac-capable fingerprints sampled"),
    }

    // ── classification pass: read the store back, score the test split.
    let centroids = pop::Centroids::from_accum(&accum);
    let confusion = classify(&store_path, &header, &centroids);
    println!(
        "\n{}",
        render::header("vendor/origin classifier (nearest centroid, z-scored features)")
    );
    println!(
        "train {} die(s), test {} die(s)",
        accum.train_dies,
        confusion.total()
    );
    println!("confusion matrix (rows = true group, cols = predicted):");
    let cols: String = GroupId::ALL
        .iter()
        .map(|g| format!("{:>6}", g.to_string()))
        .collect();
    println!("    {cols}");
    for (g, row) in confusion.counts.iter().enumerate() {
        let cells: String = row.iter().map(|c| format!("{c:>6}")).collect();
        println!("{:<4}{cells}", GroupId::ALL[g].to_string());
    }
    let frac_capable: Vec<usize> = (0..pop::GROUPS)
        .filter(|&g| GroupId::ALL[g].profile().supports_frac())
        .collect();
    let guarded: Vec<usize> = (0..pop::GROUPS)
        .filter(|&g| !GroupId::ALL[g].profile().supports_frac())
        .collect();
    println!(
        "accuracy {:.4} overall — frac-capable (A-I) {:.4}, timing-guarded (J-L) {:.4}",
        confusion.accuracy(),
        confusion.accuracy_over(frac_capable.iter().copied()),
        confusion.accuracy_over(guarded.iter().copied())
    );

    // ── observability (stderr + dumps; not part of the figure) ───────
    let stats = &accum.stats;
    let perf = &accum.perf;
    eprintln!(
        "population: {} DRAM commands ({} ACT, {} RD, {} WR); cache {}h/{}m, {} shared; \
         sched {} merge(s); leak {} skips",
        stats.commands,
        stats.activates,
        stats.reads,
        stats.writes,
        perf.cache_hits,
        perf.cache_misses,
        perf.cache_share_hits,
        perf.sched_merges,
        perf.leak_row_skips,
    );
    let ns_per_die = sim_wall.map(|wall| {
        let ns = wall.as_nanos() as f64 / header.dies.max(1) as f64;
        eprintln!(
            "population: {} die(s) in {:.3}s — {:.0} dies/s, {:.0} ns/die",
            header.dies,
            wall.as_secs_f64(),
            1e9 / ns.max(1e-9),
            ns
        );
        ns
    });

    if let Some(path) = &json_path {
        let mut doc = Json::obj()
            .field("experiment", "population")
            .field("dies", header.dies)
            .field("chunk", header.chunk)
            .field("base_seed", header.base_seed)
            .field("jobs", jobs)
            .field("store_records", records)
            .field("store_digest", format!("{digest:016x}"))
            .field("puf_valid", accum.puf_valid)
            .field("train_dies", accum.train_dies)
            .field("test_dies", confusion.total())
            .field("accuracy", confusion.accuracy())
            .field("commands", stats.commands)
            .field("cache_share_hits", perf.cache_share_hits)
            .field("sched_merges", perf.sched_merges);
        if let Some(u) = unique {
            doc = doc
                .field("inter_hd_mean", u.mean_hd)
                .field("inter_hd_min", u.min_hd)
                .field("p_match", u.p_match);
        }
        if let Some(ns) = ns_per_die {
            doc = doc.field("ns_per_die", ns);
        }
        if let Err(err) = std::fs::write(path, format!("{doc}\n")) {
            fracdram_experiments::exit_json_write_error(path, &err);
        }
    }

    if let Some(path) = &bench_json {
        // Record shape matches the kernel bench harness; the gated
        // metric is ns-per-die (smaller is better), and dies/s =
        // 1e9 / median_ns. Replay has no simulation wall, so the
        // record only exists on simulated runs.
        match ns_per_die {
            Some(ns) => {
                let body = format!(
                    "[\n{{\"bench\":\"population/dies_per_s\",\"median_ns\":{ns:.1},\"iters\":{}}}\n]\n",
                    header.dies
                );
                if let Err(err) = std::fs::write(path, body) {
                    fracdram_experiments::exit_json_write_error(path, &err);
                }
            }
            None => eprintln!("population: --bench-json ignored on --replay (no simulation wall)"),
        }
    }

    if scratch {
        std::fs::remove_file(&store_path).ok();
    }
}

/// Simulated pass: stream dies through the fleet, write the store in
/// chunk order, return the merged accumulator.
fn simulate(
    store_path: &std::path::Path,
    seed: u64,
    dies: u64,
    chunk: u64,
    jobs: usize,
    sample: usize,
) -> (pop::PopAccum, StoreHeader, u64, u64, std::time::Duration) {
    let header = StoreHeader {
        chunk,
        base_seed: seed,
        dies,
    };
    let writer = match StoreWriter::create(store_path, header) {
        Ok(w) => RefCell::new(w),
        Err(err) => exit_store_error("create", store_path, &err),
    };
    let flush = |acc: &mut pop::PopAccum| {
        if acc.records.is_empty() {
            return;
        }
        if let Err(err) = writer.borrow_mut().append_chunk(&acc.records) {
            exit_store_error("append to", store_path, &err);
        }
        acc.records.clear();
    };

    let cfg = StreamConfig {
        items: dies,
        chunk,
        jobs,
        base_seed: seed,
        window: 0,
    };
    let started = Instant::now();
    let run = run_stream(
        &cfg,
        |_, range| {
            let mut acc = pop::PopAccum::new(seed, sample);
            for i in range {
                let die_seed = item_seed(seed, i);
                let (record, metrics) = pop::simulate_die(pop::group_of(i), die_seed);
                acc.stats.accumulate(&metrics.cycles);
                acc.perf.accumulate(&metrics.model);
                acc.push(seed, i, &record);
            }
            acc
        },
        |total, mut incoming| {
            // The reducer calls this in ascending chunk order; writing
            // both pending buffers here keeps the store in global die
            // order (total's records are only non-empty on the first
            // merge, holding chunk 0).
            flush(total);
            flush(&mut incoming);
            total.merge(&incoming);
        },
    );
    let wall = started.elapsed();
    if !run.failures.is_empty() {
        for f in &run.failures {
            eprintln!("population: FAILED {f}");
        }
        std::process::exit(1);
    }
    let mut accum = run
        .result
        .unwrap_or_else(|| pop::PopAccum::new(seed, sample));
    // Single-chunk runs never call merge; drain the leftover buffer.
    flush(&mut accum);
    let (records, digest) = match writer.into_inner().finish() {
        Ok(done) => done,
        Err(err) => exit_store_error("finish", store_path, &err),
    };
    eprintln!(
        "population: stream done — {} chunk(s), peak {} pending accumulator(s) (bound {})",
        run.chunks,
        run.peak_pending,
        cfg.jobs * 4
    );
    (accum, header, digest, records, wall)
}

/// Replay pass: fold the store's records with the same chunk structure
/// and merge order as the run that wrote it — the aggregate block comes
/// out bit-identical, with zero simulation.
fn replay(store_path: &std::path::Path, sample: usize) -> (pop::PopAccum, StoreHeader, u64, u64) {
    let mut reader = match StoreReader::open(store_path) {
        Ok(r) => r,
        Err(err) => exit_store_error("open", store_path, &err),
    };
    let header = *reader.header();
    let mut total: Option<pop::PopAccum> = None;
    let mut index = 0u64;
    loop {
        let mut acc = pop::PopAccum::new(header.base_seed, sample);
        let mut folded = 0u64;
        while folded < header.chunk {
            match reader.next_record() {
                Ok(Some(record)) => {
                    acc.push(header.base_seed, index, &record);
                    index += 1;
                    folded += 1;
                }
                Ok(None) => break,
                Err(err) => exit_store_error("read", store_path, &err),
            }
        }
        if folded == 0 {
            break;
        }
        acc.records.clear();
        match &mut total {
            Some(t) => t.merge(&acc),
            None => total = Some(acc),
        }
        if folded < header.chunk {
            break;
        }
    }
    if reader.torn() {
        eprintln!(
            "population: store tail is torn — replayed the valid prefix ({} of {} records)",
            reader.records_read(),
            header.dies
        );
    }
    eprintln!(
        "population: replayed {} record(s) from {}",
        reader.records_read(),
        store_path.display()
    );
    (
        total.unwrap_or_else(|| pop::PopAccum::new(header.base_seed, sample)),
        header,
        reader.digest(),
        reader.records_read(),
    )
}

/// Classification pass: sequential read of the store, scoring the test
/// split against the trained centroids.
fn classify(
    store_path: &std::path::Path,
    header: &StoreHeader,
    centroids: &pop::Centroids,
) -> pop::Confusion {
    let mut reader = match StoreReader::open(store_path) {
        Ok(r) => r,
        Err(err) => exit_store_error("re-open", store_path, &err),
    };
    let mut confusion = pop::Confusion::default();
    let mut index = 0u64;
    loop {
        match reader.next_record() {
            Ok(Some(record)) => {
                if !pop::is_train(header.base_seed, index) {
                    confusion.record(record.group as usize, centroids.classify(&record.features));
                }
                index += 1;
            }
            Ok(None) => break,
            Err(err) => exit_store_error("read", store_path, &err),
        }
    }
    confusion
}
