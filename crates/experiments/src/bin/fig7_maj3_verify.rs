//! **Figure 7**: MAJ3-based verification of fractional values on group
//! B — the `(X₁, X₂)` outcome proportions as the number of Frac
//! operations grows, for all four placement/initial-value
//! configurations.
//!
//! ```text
//! cargo run --release -p fracdram-experiments --bin fig7_maj3_verify [-- --subarrays N]
//! ```

use fracdram::rowsets::Triplet;
use fracdram::verify::{verify_fractional, FracPlacement, OutcomeShares, VerifySetup};
use fracdram_experiments::{render, setup, Args};
use fracdram_model::{GroupId, SubarrayAddr};

fn main() {
    let args = Args::parse();
    if args.usage(
        "fig7_maj3_verify",
        "reproduce Fig. 7: (X1, X2) proportions vs #Frac on group B",
        &[
            ("subarrays", "sub-arrays scanned (default 4; paper: all)"),
            ("seed", "die seed (default 7)"),
            ("intra-jobs", "chip-parallel workers per module (default 1)"),
            ("sched", "cross-bank batch scheduling: on|off (default on)"),
        ],
    ) {
        return;
    }
    let subarrays = args.usize("subarrays", 4);
    let seed = args.u64("seed", 7);
    setup::set_intra_jobs(args.intra_jobs());
    setup::set_sched(args.sched());
    args.reject_unknown();

    let mut mc = setup::controller(GroupId::B, setup::compute_geometry(), seed);
    let geometry = *mc.module().geometry();
    let panels = [
        ("(a) frac in R1,R2, init ones", FracPlacement::R1R2, true),
        ("(b) frac in R1,R2, init zeros", FracPlacement::R1R2, false),
        ("(c) frac in R1,R3, init ones", FracPlacement::R1R3, true),
        ("(d) frac in R1,R3, init zeros", FracPlacement::R1R3, false),
    ];

    println!(
        "{}",
        render::header("Fig. 7 — MAJ3 verification of fractional values (group B)")
    );
    for (title, placement, init_ones) in panels {
        println!("\n{title}");
        println!(
            "{:>6}  {:>8} {:>8} {:>8} {:>8}   fractional signature",
            "#Frac", "(1,1)", "(0,0)", "(1,0)", "(0,1)"
        );
        for frac_ops in 0..=5 {
            let setup_cfg = VerifySetup {
                placement,
                init_ones,
                frac_ops,
            };
            let mut pairs = Vec::new();
            for sa in 0..subarrays {
                let subarray = SubarrayAddr::new(sa % geometry.banks, sa / geometry.banks);
                let triplet = Triplet::first(&geometry, subarray);
                pairs.extend(verify_fractional(&mut mc, &triplet, &setup_cfg).expect("verify"));
            }
            let s = OutcomeShares::from_pairs(&pairs);
            println!(
                "{:>6}  {:>8} {:>8} {:>8} {:>8}   {}",
                frac_ops,
                render::pct(s.one_one),
                render::pct(s.zero_zero),
                render::pct(s.one_zero),
                render::pct(s.zero_one),
                render::bar(s.fractional_share(), 30),
            );
        }
    }
    println!("\nexpected shape: without Frac the result echoes the stored value");
    println!("((1,1) for ones, (0,0) for zeros); with two or more Frac operations");
    println!("the fractional signature (1,0) dominates on almost every column.");
}
