//! **§VI-A1 / §VI-B2 cycle accounting**: the latency of every FracDRAM
//! primitive, the F-MAJ-vs-MAJ3 overhead under the ComputeDRAM
//! reserved-row strategy, and the Frac-PUF evaluation time.
//!
//! Cycle counts are *measured* by executing the programs on the
//! controller and reading its clock, then cross-checked against the
//! documented constants.
//!
//! ```text
//! cargo run --release -p fracdram-experiments --bin overhead
//! ```

use fracdram::fmaj::{fmaj_program, FmajConfig};
use fracdram::frac::{frac_program, FRAC_CYCLES};
use fracdram::halfm::halfm_program;
use fracdram::maj3::maj3_program;
use fracdram::puf::{EvalCost, PUF_FRAC_OPS};
use fracdram::rowcopy::{copy_program, COPY_CYCLES};
use fracdram::rowsets::{Quad, Triplet};
use fracdram_experiments::{render, setup, Args};
use fracdram_model::{GroupId, RowAddr, SubarrayAddr};
use fracdram_softmc::Program;

fn main() {
    let args = Args::parse();
    if args.usage(
        "overhead",
        "cycle accounting for every primitive + F-MAJ overhead + PUF eval time",
        &[
            ("seed", "die seed (default 14)"),
            ("intra-jobs", "chip-parallel workers per module (default 1)"),
            ("sched", "cross-bank batch scheduling: on|off (default on)"),
        ],
    ) {
        return;
    }
    let seed = args.u64("seed", 14);
    setup::set_intra_jobs(args.intra_jobs());
    setup::set_sched(args.sched());
    args.reject_unknown();

    let mut mc = setup::controller(GroupId::B, setup::compute_geometry(), seed);
    let geometry = *mc.module().geometry();
    let sa = SubarrayAddr::new(0, 0);
    let triplet = Triplet::first(&geometry, sa);
    let quad = Quad::canonical(&geometry, sa, GroupId::B).expect("quad");

    let mut measure = |label: &str, program: &Program| -> u64 {
        // Prime the rows so data commands do not fail.
        mc.write_row(RowAddr::new(0, 1), &vec![true; mc.module().row_bits()])
            .expect("prime");
        let before = mc.clock();
        mc.run(program).expect(label);
        let cycles = mc.clock() - before;
        println!(
            "  {label:<34} {cycles:>5} cycles  = {:>7.1} ns",
            cycles as f64 * 2.5
        );
        cycles
    };

    println!(
        "{}",
        render::header("Primitive latencies (2.5 ns memory cycles)")
    );
    let frac1 = measure("Frac (1 op)", &frac_program(RowAddr::new(0, 1), 1));
    assert_eq!(frac1, FRAC_CYCLES, "documented constant");
    measure(
        "Frac (10 ops, PUF prep)",
        &frac_program(RowAddr::new(0, 1), PUF_FRAC_OPS),
    );
    let copy = measure(
        "in-DRAM row copy",
        &copy_program(RowAddr::new(0, 1), RowAddr::new(0, 5)),
    );
    assert_eq!(copy, COPY_CYCLES, "documented constant");
    let maj3 = measure(
        "MAJ3 (trigger + read + close)",
        &maj3_program(&triplet, &geometry),
    );
    let fmaj = measure(
        "F-MAJ trigger (same shape)",
        &fmaj_program(&quad, &geometry),
    );
    measure("Half-m", &halfm_program(&quad, &geometry));

    // ---- F-MAJ overhead under the reserved-row strategy --------------
    println!(
        "\n{}",
        render::header("F-MAJ overhead vs MAJ3 (ComputeDRAM reserved-row strategy)")
    );
    let frac_ops = FmajConfig::best_for(GroupId::B).frac_ops as u64;
    // MAJ3: copy 3 operands in, run, copy the result out.
    let maj3_total = 4 * COPY_CYCLES + maj3;
    // F-MAJ: additionally initialize the fractional row (one copy) and
    // apply the Frac operations.
    let fmaj_total = 4 * COPY_CYCLES + COPY_CYCLES + frac_ops * FRAC_CYCLES + fmaj;
    let overhead = (fmaj_total as f64 / maj3_total as f64 - 1.0) * 100.0;
    println!("  MAJ3 total  = 4 copies + trigger          = {maj3_total} cycles");
    println!("  F-MAJ total = 5 copies + {frac_ops} Frac + trigger   = {fmaj_total} cycles");
    println!("  overhead    = {overhead:.1}%   (paper: ~29% with its 18-cycle copy)");

    // ---- PUF evaluation time ------------------------------------------
    println!(
        "\n{}",
        render::header("Frac-PUF evaluation time (8 KB response)")
    );
    for (label, optimized) in [
        ("SoftMC-style read-out", false),
        ("optimized controller", true),
    ] {
        let cost = EvalCost::for_row(65_536, optimized);
        println!(
            "  {label:<24} prep {} + readout {} = {} = {:.2} us",
            cost.prep_cycles,
            cost.readout_cycles,
            cost.total(),
            cost.total_micros()
        );
    }
    println!("  paper: 1.5 us conservative, 0.7 us optimized (read-out dominates)");
}
