//! **Figure 3**: voltage of the cell capacitor and the bit-line during
//! Frac operations — the analog trajectory of the interrupted row
//! activation.
//!
//! A probe is attached to one cell; the row is initialized to full
//! `Vdd` and two Frac operations are issued (as in the figure). Every
//! internal event (precharge, charge share, word-line close) is
//! sampled.
//!
//! ```text
//! cargo run --release -p fracdram-experiments --bin fig3_frac_trace [-- --ops N]
//! ```

use fracdram::frac::{frac_program, physical_pattern};
use fracdram_experiments::{render, setup, Args};
use fracdram_model::{GroupId, RowAddr};

fn main() {
    let args = Args::parse();
    if args.usage(
        "fig3_frac_trace",
        "reproduce Fig. 3: cell/bit-line voltage during Frac",
        &[
            ("ops", "number of Frac operations (default 2, as in Fig. 3)"),
            ("seed", "die seed (default 3)"),
            ("intra-jobs", "chip-parallel workers per module (default 1)"),
            ("sched", "cross-bank batch scheduling: on|off (default on)"),
        ],
    ) {
        return;
    }
    let ops = args.usize("ops", 2);
    let seed = args.u64("seed", 3);
    setup::set_intra_jobs(args.intra_jobs());
    setup::set_sched(args.sched());
    args.reject_unknown();

    let mut mc = setup::controller(GroupId::B, setup::compute_geometry(), seed);
    let row = RowAddr::new(0, 4);
    let col = 0;

    // Step 1 of the figure: the row holds a full value (physical Vdd).
    let pattern = physical_pattern(&mut mc, row, true);
    mc.write_row(row, &pattern).expect("init write");

    mc.module_mut().chip_mut(0).attach_probe(row, col);
    mc.run(&frac_program(row, ops)).expect("frac");
    // Advance past the final precharge so the close event is sampled.
    let t = mc.clock();
    mc.module_mut().probe_cell_voltage(row, col, t);
    let samples = mc.module_mut().chip_mut(0).take_probe_samples(row.bank, 0);

    println!(
        "{}",
        render::header(&format!(
            "Fig. 3 — Frac trajectory ({ops} ops, group B, one cell, Vdd = 1.5 V)"
        ))
    );
    println!(
        "{:>8}  {:>8}  {:>9}  event",
        "cycle", "cell (V)", "bit-line"
    );
    let base = samples[0].first().map_or(0, |s| s.cycle);
    for s in &samples[0] {
        println!(
            "{:>8}  {:>8.3}  {:>9.3}  {:?}",
            s.cycle - base,
            s.cell_v.value(),
            s.bitline_v.value(),
            s.event
        );
    }
    println!("\nexpected shape: each ChargeShared pulls the cell toward Vdd/2;");
    println!("each Closed freezes it before the sense amplifier can restore it.");
    println!("one Frac = 7 memory cycles (2 commands + 5 idle), 2.5 ns each.");
}
