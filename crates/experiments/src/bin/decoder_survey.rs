//! **§VI-A1 decoder exploration**: "a thorough exploration using the
//! sequence ACT(R1)–PRE–ACT(R2) with all possible combinations of row
//! addresses" — reproducing the paper's three findings on groups C/D:
//!
//! 1. only `2^k` rows ever open simultaneously;
//! 2. every pair that opens `2^k` rows differs in exactly `k` address
//!    bits (the opened set is the span of the differing bits);
//! 3. **not** every pair with `k` differing bits opens `2^k` rows.
//!
//! Group B additionally opens *three* rows for ComputeDRAM pairs.
//!
//! The pair exploration fans out over the fleet with one task per
//! group; histogram and findings analysis happen at the merge.
//!
//! ```text
//! cargo run --release -p fracdram-experiments --bin decoder_survey [-- --rows N --jobs N]
//! ```

use std::collections::BTreeMap;

use fracdram::multirow::explore_pairs;
use fracdram_experiments::{fleet, render, setup, Args, Json, TaskKey};
use fracdram_model::{GroupId, SubarrayAddr};

fn main() {
    let args = Args::parse();
    if args.usage(
        "decoder_survey",
        "reproduce §VI-A1: opened-row counts over all (R1, R2) pairs",
        &[
            (
                "rows",
                "rows scanned per sub-array (default 16 -> 240 pairs)",
            ),
            ("seed", "die seed (default 16)"),
            ("jobs", "fleet worker threads (default: all cores)"),
            ("intra-jobs", "chip-parallel workers per module (default 1)"),
            ("sched", "cross-bank batch scheduling: on|off (default on)"),
            ("retries", "extra attempts for a failing task (default 0)"),
            ("keep-going", "complete remaining tasks after a failure"),
            ("fail-fast", "stop claiming tasks after a failure (default)"),
            ("json", "write structured fleet results to PATH"),
        ],
    ) {
        return;
    }
    let rows = args.usize("rows", 16);
    let seed = args.u64("seed", 16);
    setup::set_intra_jobs(args.intra_jobs());
    setup::set_sched(args.sched());
    let jobs = args.jobs();
    let policy = args.failure_policy();
    args.reject_unknown();

    let plan: Vec<TaskKey> = [GroupId::B, GroupId::C, GroupId::D, GroupId::F]
        .into_iter()
        .map(|group| TaskKey::new(group, 0, 0))
        .collect();
    let run = fleet::run_with(&plan, seed, jobs, policy, |key, _seed| {
        let mut mc = setup::controller(key.group, setup::compute_geometry(), seed);
        let probes = explore_pairs(&mut mc, SubarrayAddr::new(0, 0), rows).expect("explore");
        setup::reclaim_caches(&mut mc);
        (probes, mc.metrics())
    });
    eprintln!("{}", run.summary());

    for report in &run.tasks {
        let group = report.key.group;
        let probes = report.value();

        println!(
            "{}",
            render::header(&format!(
                "group {group} ({}) — {} ordered pairs",
                group.profile().vendor,
                probes.len()
            ))
        );
        // Histogram of opened-row counts.
        let mut by_count: BTreeMap<usize, usize> = BTreeMap::new();
        for p in probes {
            *by_count.entry(p.opened).or_default() += 1;
        }
        print!("  opened-rows histogram:");
        for (count, pairs) in &by_count {
            print!("  {count} rows x {pairs}");
        }
        println!();

        // Finding 1: power-of-two counts only (3 allowed on group B).
        let bad: Vec<_> = probes
            .iter()
            .filter(|p| !(p.opened.is_power_of_two() || (group == GroupId::B && p.opened == 3)))
            .collect();
        println!(
            "  finding 1 (2^k counts{}) — violations: {}",
            if group == GroupId::B {
                " + triplets"
            } else {
                ""
            },
            bad.len()
        );

        // Finding 2: multi-row pairs differ in exactly k bits.
        let mut mismatches = 0;
        for p in probes {
            if p.opened > 1 && p.opened.is_power_of_two() {
                let k = (p.r1 ^ p.r2).count_ones();
                if 1usize << k != p.opened {
                    mismatches += 1;
                }
            }
        }
        println!("  finding 2 (count = 2^(bit difference)) — mismatches: {mismatches}");

        // Finding 3: per k, how many k-bit-differing pairs actually glitch.
        let mut glitched: BTreeMap<u32, (usize, usize)> = BTreeMap::new();
        for p in probes {
            let k = (p.r1 ^ p.r2).count_ones();
            if k == 0 || group == GroupId::B && p.opened == 3 {
                continue;
            }
            let entry = glitched.entry(k).or_default();
            entry.1 += 1;
            if p.opened == 1usize << k {
                entry.0 += 1;
            }
        }
        print!("  finding 3 (k-bit pairs that glitch): ");
        for (k, (open, total)) in &glitched {
            print!(" k={k}: {open}/{total}");
        }
        println!("\n");
    }

    if let Some(path) = args.json_path() {
        run.write_json("decoder_survey", path, |probes| {
            let multi = probes.iter().filter(|p| p.opened > 1).count();
            Json::obj()
                .field("pairs", probes.len())
                .field("multi_row_pairs", multi)
        })
        .unwrap_or_else(|err| fracdram_experiments::exit_json_write_error(path, &err));
    }

    println!("paper: \"only N rows can be opened where N is a power of two; all");
    println!("combinations that open 2^k rows have k bits in difference; however,");
    println!("not all combinations with k different bits can open 2^k rows.\"");

    if run.failed() > 0 {
        std::process::exit(1);
    }
}
