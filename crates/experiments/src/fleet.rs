//! A deterministic parallel experiment fleet.
//!
//! Every paper-figure binary sweeps groups × modules × sub-arrays ×
//! configurations; each cell of that sweep is self-contained (one
//! [`fracdram_softmc::MemoryController`] owning one simulated
//! [`fracdram_model::Module`], sharing nothing). The fleet fans those
//! cells out over a worker thread pool and merges the results **in plan
//! order**, so the rendered figure is byte-identical at any `--jobs`
//! count:
//!
//! - the work plan is an explicit `Vec<TaskKey>` built up front;
//! - each task derives its own seed from the base seed and its
//!   coordinates ([`task_seed`]) instead of consuming a shared RNG;
//! - workers claim tasks from an atomic cursor and write results into
//!   the task's own plan slot — merge order never depends on thread
//!   scheduling.
//!
//! Observability: per-task wall time, per-task and aggregated
//! [`CycleStats`] from each task's controller, a progress line on
//! stderr as tasks complete, and an optional structured JSON dump
//! (`--json PATH`) for tracking benchmark trajectories across PRs.

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use fracdram_model::{GroupId, ModelPerf};
use fracdram_softmc::{CycleStats, RunMetrics};
use fracdram_stats::rng::mix;

use crate::json::Json;

/// Coordinates of one fleet task inside a sweep.
///
/// `variant` distinguishes configurations that share the same physical
/// location (an F-MAJ config index, an environment condition, a sweep
/// point); plain location sweeps leave it 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskKey {
    /// DRAM group of the module under test.
    pub group: GroupId,
    /// Module index within the group.
    pub module: usize,
    /// Sub-array index within the module (0 when the task spans the
    /// whole module).
    pub subarray: usize,
    /// Configuration index within (group, module, subarray).
    pub variant: usize,
}

impl TaskKey {
    /// A task covering one (group, module, sub-array) cell.
    pub fn new(group: GroupId, module: usize, subarray: usize) -> Self {
        TaskKey {
            group,
            module,
            subarray,
            variant: 0,
        }
    }

    /// The same cell under a numbered configuration.
    pub fn with_variant(mut self, variant: usize) -> Self {
        self.variant = variant;
        self
    }
}

impl fmt::Display for TaskKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "group {} module {} sa {}",
            self.group, self.module, self.subarray
        )?;
        if self.variant != 0 {
            write!(f, " cfg {}", self.variant)?;
        }
        Ok(())
    }
}

/// Derives the task's private seed: `base_seed` mixed with the task
/// coordinates. The same (base seed, key) pair always yields the same
/// seed, and distinct keys yield independent streams — determinism at
/// any thread count follows.
pub fn task_seed(base_seed: u64, key: &TaskKey) -> u64 {
    base_seed
        ^ mix(
            base_seed,
            &[
                key.group as u64,
                key.module as u64,
                key.subarray as u64,
                key.variant as u64,
            ],
        )
}

/// What to do when a task fails (panics or returns a typed error).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureMode {
    /// Stop claiming new tasks after the first failure; unstarted tasks
    /// are reported as skipped.
    FailFast,
    /// Complete every remaining task and report the failures at the
    /// end — one poisoned cell must not sink the whole sweep.
    KeepGoing,
}

/// The fleet's failure policy: mode plus a bounded, deterministic retry
/// budget. A retry re-runs the task with seed
/// `task_seed(base, key) ^ attempt`, so retry outcomes are reproducible
/// at any job count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetPolicy {
    /// Reaction to a task failure.
    pub mode: FailureMode,
    /// Extra attempts granted to a failing task before its failure is
    /// recorded.
    pub retries: u32,
}

impl FleetPolicy {
    /// Stop-at-first-failure, no retries (the default).
    pub fn fail_fast() -> Self {
        FleetPolicy {
            mode: FailureMode::FailFast,
            retries: 0,
        }
    }

    /// Complete-the-plan, no retries.
    pub fn keep_going() -> Self {
        FleetPolicy {
            mode: FailureMode::KeepGoing,
            retries: 0,
        }
    }

    /// The same policy with a retry budget.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }
}

impl Default for FleetPolicy {
    fn default() -> Self {
        FleetPolicy::fail_fast()
    }
}

/// One task that did not produce a value: where it ran, with what seed,
/// on which attempt, and why it failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskFailure {
    /// The task's coordinates in the plan.
    pub key: TaskKey,
    /// Seed of the final (failing) attempt.
    pub seed: u64,
    /// Zero-based attempt index the failure was recorded on.
    pub attempt: u32,
    /// Panic payload or typed-error message.
    pub message: String,
}

impl fmt::Display for TaskFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} — seed {} attempt {}: {}",
            self.key, self.seed, self.attempt, self.message
        )
    }
}

/// One completed task: its key, payload (or failure), and observability
/// data.
#[derive(Debug, Clone)]
pub struct TaskReport<T> {
    /// The task's coordinates in the plan.
    pub key: TaskKey,
    /// Seed the task's final attempt ran with.
    pub seed: u64,
    /// Zero-based index of the final attempt (0 unless retries fired).
    pub attempt: u32,
    /// The task function's result, or the contained failure.
    pub result: Result<T, TaskFailure>,
    /// Command counters from the task's controller(s).
    pub stats: CycleStats,
    /// Kernel performance counters from the task's simulated module(s).
    pub perf: ModelPerf,
    /// Wall time the task took.
    pub wall: Duration,
}

impl<T> TaskReport<T> {
    /// The successful value.
    ///
    /// # Panics
    ///
    /// Panics (with the contained failure) when the task failed — the
    /// right behavior for fail-fast experiments that treat any failure
    /// as fatal.
    pub fn value(&self) -> &T {
        match &self.result {
            Ok(v) => v,
            Err(f) => panic!("fleet task failed: {f}"),
        }
    }

    /// The successful value, or `None` when the task failed.
    pub fn ok(&self) -> Option<&T> {
        self.result.as_ref().ok()
    }

    /// The failure, or `None` when the task succeeded.
    pub fn failure(&self) -> Option<&TaskFailure> {
        self.result.as_ref().err()
    }
}

/// A finished fleet run: every task's report, in plan order.
#[derive(Debug)]
pub struct FleetRun<T> {
    /// Per-task reports, ordered exactly as the input plan.
    pub tasks: Vec<TaskReport<T>>,
    /// Worker threads used.
    pub jobs: usize,
    /// Base seed the per-task seeds derive from.
    pub base_seed: u64,
    /// Wall time of the whole fan-out.
    pub wall: Duration,
}

impl<T> FleetRun<T> {
    /// The successful task values in plan order (failed tasks are
    /// skipped).
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.tasks.iter().filter_map(|t| t.ok())
    }

    /// The failures in plan order.
    pub fn failures(&self) -> impl Iterator<Item = &TaskFailure> {
        self.tasks.iter().filter_map(|t| t.failure())
    }

    /// Number of tasks that failed (including skipped ones under
    /// fail-fast).
    pub fn failed(&self) -> usize {
        self.failures().count()
    }

    /// Aggregated command counters across every task.
    pub fn total_stats(&self) -> CycleStats {
        let mut total = CycleStats::default();
        for t in &self.tasks {
            total.accumulate(&t.stats);
        }
        total
    }

    /// Aggregated kernel performance counters across every task.
    pub fn total_perf(&self) -> ModelPerf {
        let mut total = ModelPerf::default();
        for t in &self.tasks {
            total.accumulate(&t.perf);
        }
        total
    }

    /// Run summary for stderr (not part of figure output): one line of
    /// counters, plus — only when something went wrong or faults were
    /// injected — a fault-counter line and a failure section. A
    /// fault-free, failure-free run renders byte-identically to the
    /// pre-fault-layer summary.
    pub fn summary(&self) -> String {
        let stats = self.total_stats();
        let perf = self.total_perf();
        let mut s = format!(
            "fleet: {} task(s) on {} thread(s) in {:.3}s — {} DRAM commands ({} ACT, {} RD, {} WR); \
             kernels: {} events / {} columns, {} exp(), cache {}h/{}m, {} shared, {:.1}ms in kernels; \
             leak: {} skips, {} decay-vec hits, exp batch {} call(s) / {} lanes; \
             snapshots {}h/{}m ({} B), exp memo {}h/{}m; \
             noise: {} draws / {} fills, {:.1}ms; \
             sched: {} merge(s) / {} ticks overlapped / {} fallback(s)",
            self.tasks.len(),
            self.jobs,
            self.wall.as_secs_f64(),
            stats.commands,
            stats.activates,
            stats.reads,
            stats.writes,
            perf.events(),
            perf.columns,
            perf.exp_calls,
            perf.cache_hits,
            perf.cache_misses,
            perf.cache_share_hits,
            perf.kernel_ns() as f64 / 1e6,
            perf.leak_row_skips,
            perf.decay_vec_hits,
            perf.exp_batch_calls,
            perf.exp_batch_lanes,
            perf.snapshot_hits,
            perf.snapshot_misses,
            perf.snapshot_bytes,
            perf.exp_memo_hits,
            perf.exp_memo_misses,
            perf.noise_draws,
            perf.noise_fills,
            perf.noise_ns as f64 / 1e6,
            perf.sched_merges,
            perf.sched_overlapped_ticks,
            perf.sched_fallbacks,
        );
        if perf.fault_events() > 0 {
            s.push_str(&format!(
                "\nfleet: faults: {} event(s) — {} sense flips, {} stuck pins, \
                 {} decoder drops, {} excursion commands",
                perf.fault_events(),
                perf.fault_sense_flips,
                perf.fault_stuck_pins,
                perf.fault_decoder_drops,
                perf.fault_env_commands,
            ));
        }
        let failed = self.failed();
        if failed > 0 {
            s.push_str(&format!("\nfleet: {failed} task(s) FAILED:"));
            for f in self.failures() {
                s.push_str(&format!("\nfleet:   {f}"));
            }
        }
        s
    }

    /// Serializes the run — per-task wall time, counters, and a
    /// caller-provided projection of each value — and writes it to
    /// `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn write_json(
        &self,
        experiment: &str,
        path: &str,
        value_json: impl Fn(&T) -> Json,
    ) -> std::io::Result<()> {
        let tasks: Vec<Json> = self
            .tasks
            .iter()
            .map(|t| {
                let obj = Json::obj()
                    .field("group", t.key.group.to_string())
                    .field("module", t.key.module)
                    .field("subarray", t.key.subarray)
                    .field("variant", t.key.variant)
                    .field("seed", t.seed)
                    .field("attempt", u64::from(t.attempt))
                    .field("wall_ms", t.wall.as_secs_f64() * 1e3)
                    .field("stats", stats_json(&t.stats))
                    .field("perf", perf_json(&t.perf));
                match &t.result {
                    Ok(v) => obj.field("result", value_json(v)),
                    Err(f) => obj
                        .field("result", Json::Null)
                        .field("error", f.message.clone()),
                }
            })
            .collect();
        let doc = Json::obj()
            .field("experiment", experiment)
            .field("jobs", self.jobs)
            .field("base_seed", self.base_seed)
            .field("failed", self.failed())
            .field("wall_ms", self.wall.as_secs_f64() * 1e3)
            .field("stats", stats_json(&self.total_stats()))
            .field("perf", perf_json(&self.total_perf()))
            .field("tasks", Json::Arr(tasks));
        let mut file = std::fs::File::create(path)?;
        writeln!(file, "{doc}")
    }
}

fn stats_json(s: &CycleStats) -> Json {
    Json::obj()
        .field("commands", s.commands)
        .field("activates", s.activates)
        .field("precharges", s.precharges)
        .field("reads", s.reads)
        .field("writes", s.writes)
        .field("refreshes", s.refreshes)
}

fn perf_json(p: &ModelPerf) -> Json {
    Json::obj()
        .field("share_events", p.share_events)
        .field("sense_events", p.sense_events)
        .field("close_events", p.close_events)
        .field("leak_events", p.leak_events)
        .field("columns", p.columns)
        .field("exp_calls", p.exp_calls)
        .field("cache_hits", p.cache_hits)
        .field("cache_misses", p.cache_misses)
        .field("cache_share_hits", p.cache_share_hits)
        .field("leak_row_skips", p.leak_row_skips)
        .field("decay_vec_hits", p.decay_vec_hits)
        .field("exp_batch_calls", p.exp_batch_calls)
        .field("exp_batch_lanes", p.exp_batch_lanes)
        .field("snapshot_hits", p.snapshot_hits)
        .field("snapshot_misses", p.snapshot_misses)
        .field("snapshot_bytes", p.snapshot_bytes)
        .field("exp_memo_hits", p.exp_memo_hits)
        .field("exp_memo_misses", p.exp_memo_misses)
        .field("noise_draws", p.noise_draws)
        .field("noise_fills", p.noise_fills)
        .field("sched_merges", p.sched_merges)
        .field("sched_overlapped_ticks", p.sched_overlapped_ticks)
        .field("sched_fallbacks", p.sched_fallbacks)
        .field("share_ns", p.share_ns)
        .field("sense_ns", p.sense_ns)
        .field("close_ns", p.close_ns)
        .field("leak_ns", p.leak_ns)
        .field("noise_ns", p.noise_ns)
        .field("fault_sense_flips", p.fault_sense_flips)
        .field("fault_stuck_pins", p.fault_stuck_pins)
        .field("fault_decoder_drops", p.fault_decoder_drops)
        .field("fault_env_commands", p.fault_env_commands)
}

/// Renders a panic payload as a message for [`TaskFailure`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked with a non-string payload".to_string()
    }
}

/// Runs `task` over every key in `plan` on `jobs` worker threads and
/// merges the reports in plan order, with the default fail-fast,
/// no-retry policy. See [`run_with`].
pub fn run<T, F>(plan: &[TaskKey], base_seed: u64, jobs: usize, task: F) -> FleetRun<T>
where
    T: Send,
    F: Fn(&TaskKey, u64) -> (T, RunMetrics) + Sync,
{
    run_with(plan, base_seed, jobs, FleetPolicy::fail_fast(), task)
}

/// Runs `task` over every key in `plan` on `jobs` worker threads and
/// merges the reports in plan order, containing failures per `policy`.
///
/// The task function receives its key and derived seed and returns the
/// payload plus the metrics of whatever controllers it drove — command
/// counters and kernel counters together, normally
/// [`fracdram_softmc::MemoryController::metrics`] (pass
/// [`RunMetrics::default()`] when none). `jobs == 1` reproduces
/// serial execution exactly; any other count produces the same merged
/// reports because tasks share nothing and every task's randomness
/// derives from [`task_seed`].
///
/// A panicking task is caught (`catch_unwind`), optionally retried with
/// seed `task_seed ^ attempt` up to `policy.retries` extra times, and
/// recorded as a [`TaskFailure`] carrying its key, final seed, attempt,
/// and panic message. Under [`FailureMode::FailFast`] the fleet stops
/// claiming new tasks after the first recorded failure and reports the
/// unstarted tasks as skipped; under [`FailureMode::KeepGoing`] every
/// planned task still runs. Either way the merge stays in plan order,
/// so reports are identical at any job count (modulo which tasks a
/// fail-fast stop happens to skip).
///
/// Progress lines go to stderr; stdout stays reserved for figure
/// output so rendered figures are byte-identical at any job count.
///
/// # Panics
///
/// Panics when `jobs == 0`.
pub fn run_with<T, F>(
    plan: &[TaskKey],
    base_seed: u64,
    jobs: usize,
    policy: FleetPolicy,
    task: F,
) -> FleetRun<T>
where
    T: Send,
    F: Fn(&TaskKey, u64) -> (T, RunMetrics) + Sync,
{
    assert!(jobs > 0, "fleet needs at least one worker");
    let started = Instant::now();
    let cursor = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<TaskReport<T>>>> = plan.iter().map(|_| Mutex::new(None)).collect();
    let workers = jobs.min(plan.len()).max(1);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // Per-worker materialize cache: consecutive tasks on this
                // worker donate their per-chip caches forward (same-die
                // tasks then skip the rebuild entirely). Values cannot
                // change — buffers survive adoption only for the same die
                // seed and are pure in it — so any job count merges the
                // same bytes; only wall time and `cache_share_hits` move.
                crate::setup::arm_cache_pool();
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(key) = plan.get(index) else {
                        break;
                    };
                    let base = task_seed(base_seed, key);
                    let task_started = Instant::now();
                    let mut attempt: u32 = 0;
                    let outcome = loop {
                        let seed = base ^ u64::from(attempt);
                        match catch_unwind(AssertUnwindSafe(|| task(key, seed))) {
                            Ok(ok) => break Ok((seed, ok)),
                            Err(payload) => {
                                let message = panic_message(payload);
                                if attempt >= policy.retries {
                                    break Err(TaskFailure {
                                        key: *key,
                                        seed,
                                        attempt,
                                        message,
                                    });
                                }
                                eprintln!(
                                    "fleet: {key} attempt {attempt} failed ({message}); retrying"
                                );
                                attempt += 1;
                            }
                        }
                    };
                    let wall = task_started.elapsed();
                    let report = match outcome {
                        Ok((seed, (value, metrics))) => TaskReport {
                            key: *key,
                            seed,
                            attempt,
                            result: Ok(value),
                            stats: metrics.cycles,
                            perf: metrics.model,
                            wall,
                        },
                        Err(failure) => {
                            eprintln!("fleet: {failure}");
                            if policy.mode == FailureMode::FailFast {
                                stop.store(true, Ordering::Relaxed);
                            }
                            TaskReport {
                                key: *key,
                                seed: failure.seed,
                                attempt,
                                result: Err(failure),
                                stats: CycleStats::default(),
                                perf: ModelPerf::default(),
                                wall,
                            }
                        }
                    };
                    // A panic inside `task` cannot poison these mutexes (the
                    // lock is never held across the task), but a defensive
                    // recover keeps one broken slot from cascading into a
                    // fleet-wide abort.
                    *slots[index].lock().unwrap_or_else(PoisonError::into_inner) = Some(report);
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    eprintln!(
                        "fleet: [{finished}/{}] {key}  {:.1}ms",
                        plan.len(),
                        wall.as_secs_f64() * 1e3
                    );
                }
                crate::setup::disarm_cache_pool();
            });
        }
    });

    let tasks = slots
        .into_iter()
        .enumerate()
        .map(|(index, slot)| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| {
                    // Only reachable when a fail-fast stop kept the task
                    // from being claimed.
                    let key = plan[index];
                    let seed = task_seed(base_seed, &key);
                    TaskReport {
                        key,
                        seed,
                        attempt: 0,
                        result: Err(TaskFailure {
                            key,
                            seed,
                            attempt: 0,
                            message: "skipped: fleet stopped after an earlier failure".to_string(),
                        }),
                        stats: CycleStats::default(),
                        perf: ModelPerf::default(),
                        wall: Duration::ZERO,
                    }
                })
        })
        .collect();
    FleetRun {
        tasks,
        jobs: workers,
        base_seed,
        wall: started.elapsed(),
    }
}

/// Derives the private seed for one item (die) of a streamed
/// population: `base_seed` mixed with the item's global index. A pure
/// function of `(base_seed, index)`, so every die's entire simulation
/// is independent of chunk size, worker count, and arrival order.
pub fn item_seed(base_seed: u64, index: u64) -> u64 {
    base_seed ^ mix(base_seed, &[index])
}

/// Configuration of a streamed (chunked) fleet run.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Total number of items (dies) to stream, indexed `0..items`.
    pub items: u64,
    /// Items per chunk; each chunk is folded into one accumulator.
    pub chunk: u64,
    /// Worker threads.
    pub jobs: usize,
    /// Base seed every [`item_seed`] derives from.
    pub base_seed: u64,
    /// Maximum chunks a worker may run ahead of the merge frontier
    /// (`0` = auto: `4 × jobs`). This is the memory bound: at most
    /// `window` finished accumulators are resident awaiting their turn,
    /// plus one in-flight accumulator per worker — never the
    /// population.
    pub window: usize,
}

/// One chunk that did not fold: its index and the panic message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkFailure {
    /// Index of the failed chunk.
    pub chunk: u64,
    /// Panic payload rendered as text.
    pub message: String,
}

impl fmt::Display for ChunkFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chunk {}: {}", self.chunk, self.message)
    }
}

/// A finished streamed run: the merged accumulator plus the
/// observability needed to prove the memory bound held.
#[derive(Debug)]
pub struct StreamRun<A> {
    /// The in-order merge of every chunk accumulator (`None` when the
    /// run had zero items).
    pub result: Option<A>,
    /// Number of chunks the plan was cut into.
    pub chunks: u64,
    /// Worker threads used.
    pub jobs: usize,
    /// Base seed the per-item seeds derive from.
    pub base_seed: u64,
    /// Chunks that panicked (their accumulators are missing from the
    /// merge). Empty on a clean run.
    pub failures: Vec<ChunkFailure>,
    /// Peak number of finished accumulators held pending their in-order
    /// merge — always ≤ the claim window, which is the bounded-memory
    /// claim in one number.
    pub peak_pending: usize,
    /// Wall time of the whole stream.
    pub wall: Duration,
}

/// Streams `cfg.items` items through `cfg.jobs` workers in fixed-size
/// chunks, folding each chunk into its own accumulator and merging
/// accumulators **in ascending chunk order**.
///
/// Determinism: `fold_chunk(chunk_index, range)` sees exactly the same
/// index range at any job count, every item derives its randomness from
/// [`item_seed`], and `merge` is applied left-to-right over chunk
/// indices `0, 1, 2, …` — a fixed floating-point expression tree. The
/// merged result is therefore **byte-identical** at any `--jobs N`,
/// even for non-associative float folds, as long as the chunk size is
/// unchanged (the chunk size is part of the result's identity, which is
/// why the binary store records it in its header).
///
/// Memory: workers may claim a chunk only while it is within
/// `cfg.window` chunks of the merge frontier (a claim past the window
/// blocks on a condvar until the reducer catches up), so resident state
/// is bounded by `window + jobs` accumulators regardless of how many
/// billions of items stream through.
///
/// A panicking chunk is caught, recorded as a [`ChunkFailure`], and
/// treated as merged (so the frontier advances and no worker
/// deadlocks); remaining claims stop after the first failure, mirroring
/// fail-fast. Callers should treat `failures ≠ ∅` as fatal for
/// figure output.
///
/// # Panics
///
/// Panics when `cfg.jobs == 0` or `cfg.chunk == 0`.
pub fn run_stream<A, F, M>(cfg: &StreamConfig, fold_chunk: F, mut merge: M) -> StreamRun<A>
where
    A: Send,
    F: Fn(u64, std::ops::Range<u64>) -> A + Sync,
    M: FnMut(&mut A, A),
{
    assert!(cfg.jobs > 0, "stream needs at least one worker");
    assert!(cfg.chunk > 0, "stream needs a nonzero chunk size");
    let started = Instant::now();
    let chunks = cfg.items.div_ceil(cfg.chunk);
    let window = if cfg.window == 0 {
        cfg.jobs * 4
    } else {
        cfg.window
    } as u64;
    let cursor = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    // The merge frontier: chunks `< floor` have been handed to the
    // reducer in order. Workers block before *claiming* a chunk beyond
    // `floor + window`, which is what bounds resident accumulators.
    let frontier = Mutex::new(0u64);
    let frontier_moved = Condvar::new();
    let (sender, receiver) = mpsc::channel::<(u64, Result<A, String>)>();

    let mut result: Option<A> = None;
    let mut failures = Vec::new();
    let mut peak_pending = 0usize;

    std::thread::scope(|scope| {
        for _ in 0..cfg.jobs.min(chunks.max(1) as usize) {
            let sender = sender.clone();
            scope.spawn(|| {
                let sender = sender; // move the clone, borrow the rest
                crate::setup::arm_cache_pool();
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= chunks {
                        break;
                    }
                    // Claim gate: wait until this chunk is inside the
                    // window above the merge frontier.
                    {
                        let mut floor = frontier.lock().unwrap_or_else(PoisonError::into_inner);
                        while index >= *floor + window && !stop.load(Ordering::Relaxed) {
                            floor = frontier_moved
                                .wait(floor)
                                .unwrap_or_else(PoisonError::into_inner);
                        }
                    }
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let lo = index * cfg.chunk;
                    let hi = (lo + cfg.chunk).min(cfg.items);
                    let outcome = catch_unwind(AssertUnwindSafe(|| fold_chunk(index, lo..hi)))
                        .map_err(|payload| {
                            stop.store(true, Ordering::Relaxed);
                            panic_message(payload)
                        });
                    if sender.send((index, outcome)).is_err() {
                        break;
                    }
                }
                crate::setup::disarm_cache_pool();
                // Wake any worker still parked on the claim gate so a
                // stop is never missed.
                frontier_moved.notify_all();
            });
        }
        drop(sender);

        // In-order reducer (runs on the calling thread): buffer
        // out-of-order chunks, merge the contiguous prefix, advance the
        // frontier, and release parked workers.
        let mut pending: BTreeMap<u64, Result<A, String>> = BTreeMap::new();
        let mut next = 0u64;
        let mut merged = 0u64;
        for (index, outcome) in receiver.iter() {
            pending.insert(index, outcome);
            peak_pending = peak_pending.max(pending.len());
            while let Some(outcome) = pending.remove(&next) {
                match outcome {
                    Ok(acc) => match result.as_mut() {
                        Some(total) => merge(total, acc),
                        None => result = Some(acc),
                    },
                    Err(message) => {
                        let failure = ChunkFailure {
                            chunk: next,
                            message,
                        };
                        eprintln!("fleet: stream {failure}");
                        failures.push(failure);
                    }
                }
                next += 1;
                merged += 1;
                *frontier.lock().unwrap_or_else(PoisonError::into_inner) = next;
                frontier_moved.notify_all();
                if merged.is_multiple_of(64) || merged == chunks {
                    eprintln!("fleet: stream [{merged}/{chunks}] chunks merged");
                }
            }
        }
        // A fail-fast stop can leave claimed-but-unmerged successors in
        // the buffer; they were produced, so merge order is still
        // ascending over whatever completed. Anything after the failed
        // chunk is dropped (the caller treats failures as fatal).
        drop(pending);
    });

    StreamRun {
        result,
        chunks,
        jobs: cfg.jobs,
        base_seed: cfg.base_seed,
        failures,
        peak_pending,
        wall: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> Vec<TaskKey> {
        let mut plan = Vec::new();
        for group in [GroupId::B, GroupId::C] {
            for module in 0..2 {
                for subarray in 0..3 {
                    plan.push(TaskKey::new(group, module, subarray));
                }
            }
        }
        plan
    }

    #[test]
    fn merge_preserves_plan_order() {
        let plan = plan();
        let run = run(&plan, 7, 4, |key, seed| {
            (
                (key.module * 10 + key.subarray, seed),
                RunMetrics::default(),
            )
        });
        assert_eq!(run.tasks.len(), plan.len());
        for (report, key) in run.tasks.iter().zip(&plan) {
            assert_eq!(report.key, *key);
            assert_eq!(report.value().0, key.module * 10 + key.subarray);
            assert_eq!(report.seed, task_seed(7, key));
            assert_eq!(report.attempt, 0);
        }
        assert_eq!(run.failed(), 0);
    }

    #[test]
    fn identical_results_at_any_job_count() {
        let plan = plan();
        let task = |key: &TaskKey, seed: u64| {
            let mut rng = fracdram_stats::rng::Rng::seed_from_u64(seed);
            let noise: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
            ((key.variant, noise), RunMetrics::default())
        };
        let serial = run(&plan, 42, 1, task);
        let parallel = run(&plan, 42, 8, task);
        let a: Vec<_> = serial.values().collect();
        let b: Vec<_> = parallel.values().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_are_distinct_per_task() {
        let plan = plan();
        let mut seen = std::collections::HashSet::new();
        for key in &plan {
            assert!(seen.insert(task_seed(5, key)), "seed collision at {key}");
        }
        // Variant changes the seed too.
        assert_ne!(
            task_seed(5, &plan[0]),
            task_seed(5, &plan[0].with_variant(1))
        );
    }

    #[test]
    fn stats_aggregate_across_tasks() {
        let plan = plan();
        let run = run(&plan, 1, 2, |_, _| {
            let metrics = RunMetrics {
                cycles: CycleStats {
                    commands: 3,
                    reads: 1,
                    ..CycleStats::default()
                },
                ..RunMetrics::default()
            };
            ((), metrics)
        });
        let total = run.total_stats();
        assert_eq!(total.commands, 3 * plan.len() as u64);
        assert_eq!(total.reads, plan.len() as u64);
        assert!(run.summary().contains("task(s)"));
    }

    #[test]
    fn perf_counters_surface_in_summary_and_json() {
        let plan = plan();
        let run = run(&plan, 1, 2, |_, _| {
            let metrics = RunMetrics {
                model: ModelPerf {
                    share_events: 2,
                    columns: 64,
                    exp_calls: 5,
                    cache_hits: 1,
                    cache_misses: 1,
                    snapshot_hits: 4,
                    snapshot_misses: 2,
                    snapshot_bytes: 1024,
                    exp_memo_hits: 7,
                    exp_memo_misses: 3,
                    noise_draws: 96,
                    noise_fills: 6,
                    noise_ns: 1_500_000,
                    cache_share_hits: 9,
                    leak_row_skips: 11,
                    decay_vec_hits: 4,
                    exp_batch_calls: 2,
                    exp_batch_lanes: 128,
                    sched_merges: 3,
                    sched_overlapped_ticks: 42,
                    sched_fallbacks: 1,
                    ..ModelPerf::default()
                },
                ..RunMetrics::default()
            };
            ((), metrics)
        });
        let total = run.total_perf();
        assert_eq!(total.share_events, 2 * plan.len() as u64);
        assert_eq!(total.columns, 64 * plan.len() as u64);
        let summary = run.summary();
        assert!(summary.contains("kernels:"), "{summary}");
        assert!(
            summary.contains(&format!("{} exp()", total.exp_calls)),
            "{summary}"
        );
        assert!(
            summary.contains(&format!(
                "snapshots {}h/{}m ({} B)",
                total.snapshot_hits, total.snapshot_misses, total.snapshot_bytes
            )),
            "{summary}"
        );
        assert!(
            summary.contains(&format!(
                "exp memo {}h/{}m",
                total.exp_memo_hits, total.exp_memo_misses
            )),
            "{summary}"
        );
        assert!(
            summary.contains(&format!(
                "noise: {} draws / {} fills",
                total.noise_draws, total.noise_fills
            )),
            "{summary}"
        );
        assert!(
            summary.contains(&format!("{} shared", total.cache_share_hits)),
            "{summary}"
        );
        assert!(
            summary.contains(&format!(
                "leak: {} skips, {} decay-vec hits, exp batch {} call(s) / {} lanes",
                total.leak_row_skips,
                total.decay_vec_hits,
                total.exp_batch_calls,
                total.exp_batch_lanes
            )),
            "{summary}"
        );
        assert!(
            summary.contains(&format!(
                "sched: {} merge(s) / {} ticks overlapped / {} fallback(s)",
                total.sched_merges, total.sched_overlapped_ticks, total.sched_fallbacks
            )),
            "{summary}"
        );

        let dir = std::env::temp_dir().join("fracdram_fleet_perf_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("perf.json");
        run.write_json("unit", path.to_str().unwrap(), |()| Json::from(0.0))
            .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"perf\":{"), "{text}");
        assert!(
            text.contains(&format!("\"share_events\":{}", total.share_events)),
            "{text}"
        );
        for field in [
            format!("\"snapshot_hits\":{}", total.snapshot_hits),
            format!("\"snapshot_misses\":{}", total.snapshot_misses),
            format!("\"snapshot_bytes\":{}", total.snapshot_bytes),
            format!("\"exp_memo_hits\":{}", total.exp_memo_hits),
            format!("\"exp_memo_misses\":{}", total.exp_memo_misses),
            format!("\"noise_draws\":{}", total.noise_draws),
            format!("\"noise_fills\":{}", total.noise_fills),
            format!("\"cache_share_hits\":{}", total.cache_share_hits),
            format!("\"leak_row_skips\":{}", total.leak_row_skips),
            format!("\"decay_vec_hits\":{}", total.decay_vec_hits),
            format!("\"exp_batch_calls\":{}", total.exp_batch_calls),
            format!("\"exp_batch_lanes\":{}", total.exp_batch_lanes),
            format!("\"sched_merges\":{}", total.sched_merges),
            format!(
                "\"sched_overlapped_ticks\":{}",
                total.sched_overlapped_ticks
            ),
            format!("\"sched_fallbacks\":{}", total.sched_fallbacks),
        ] {
            assert!(text.contains(&field), "{field} missing in {text}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_dump_is_valid_shape() {
        let dir = std::env::temp_dir().join("fracdram_fleet_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump.json");
        let run = run(&plan()[..2], 1, 1, |key, _| {
            (key.subarray as f64, RunMetrics::default())
        });
        run.write_json("unit", path.to_str().unwrap(), |v| Json::from(*v))
            .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        assert!(text.contains("\"experiment\":\"unit\""));
        assert!(text.contains("\"tasks\":["));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_jobs_panics() {
        let _ = run(&plan(), 0, 0, |_, _| ((), RunMetrics::default()));
    }

    /// The key for the task that the poisoned-fleet tests blow up.
    fn poison_key() -> TaskKey {
        TaskKey::new(GroupId::C, 0, 1)
    }

    fn poisoned_task(key: &TaskKey, seed: u64) -> (u64, RunMetrics) {
        assert!(
            *key != poison_key(),
            "injected poison at {key} (seed {seed})"
        );
        (seed.wrapping_mul(3), RunMetrics::default())
    }

    /// The headline robustness claim: a keep-going, 15-task fleet with
    /// one poisoned task completes the other 14 and reports the failure
    /// with its key, seed, and attempt — and the reports are identical
    /// at any job count. This is also the regression test for the old
    /// mutex-poisoning hazard: a worker panic must not take down the
    /// surviving reports.
    #[test]
    fn keep_going_survives_a_poisoned_task() {
        let mut plan = plan(); // 12 tasks
        for variant in 1..4 {
            plan.push(poison_key().with_variant(variant));
        }
        assert_eq!(plan.len(), 15);
        assert!(plan.contains(&poison_key()));
        let serial = run_with(&plan, 9, 1, FleetPolicy::keep_going(), poisoned_task);
        let parallel = run_with(&plan, 9, 8, FleetPolicy::keep_going(), poisoned_task);
        for fleet in [&serial, &parallel] {
            assert_eq!(fleet.tasks.len(), plan.len());
            assert_eq!(fleet.failed(), 1);
            assert_eq!(fleet.values().count(), 14);
            let failure = fleet.failures().next().unwrap();
            assert_eq!(failure.key, poison_key());
            assert_eq!(failure.seed, task_seed(9, &poison_key()));
            assert_eq!(failure.attempt, 0);
            assert!(failure.message.contains("injected poison"), "{failure}");
            let summary = fleet.summary();
            assert!(summary.contains("1 task(s) FAILED"), "{summary}");
            assert!(summary.contains("injected poison"), "{summary}");
            assert!(
                summary.contains(&format!("seed {} attempt 0", failure.seed)),
                "{summary}"
            );
        }
        let a: Vec<_> = serial.values().collect();
        let b: Vec<_> = parallel.values().collect();
        assert_eq!(a, b, "keep-going values must not depend on job count");
        let fa: Vec<_> = serial.failures().collect();
        let fb: Vec<_> = parallel.failures().collect();
        assert_eq!(fa, fb);
    }

    #[test]
    fn fail_fast_stops_claiming_tasks() {
        let plan = plan();
        let poison_index = plan.iter().position(|k| *k == poison_key()).unwrap();
        let fleet = run_with(&plan, 9, 1, FleetPolicy::fail_fast(), poisoned_task);
        assert_eq!(fleet.tasks.len(), plan.len());
        // Serial fail-fast: everything before the poison succeeds, the
        // poison fails, everything after is skipped.
        assert_eq!(fleet.values().count(), poison_index);
        assert_eq!(fleet.failed(), plan.len() - poison_index);
        let mut failures = fleet.failures();
        assert!(failures.next().unwrap().message.contains("injected poison"));
        for skipped in failures {
            assert!(skipped.message.contains("skipped"), "{skipped}");
        }
        let summary = fleet.summary();
        assert!(summary.contains("FAILED"), "{summary}");
    }

    #[test]
    fn retries_perturb_the_seed_deterministically() {
        let plan = plan();
        let flaky = |key: &TaskKey, seed: u64| {
            if *key == poison_key() {
                // Fails on its base seed and on the first retry; the
                // second retry (seed ^ 2) succeeds.
                assert!(
                    seed != task_seed(9, key) && seed != task_seed(9, key) ^ 1,
                    "flaky failure at attempt seed {seed}"
                );
            }
            (seed, RunMetrics::default())
        };
        let fleet = run_with(
            &plan,
            9,
            4,
            FleetPolicy::keep_going().with_retries(2),
            flaky,
        );
        assert_eq!(fleet.failed(), 0);
        let report = fleet.tasks.iter().find(|t| t.key == poison_key()).unwrap();
        assert_eq!(report.attempt, 2);
        assert_eq!(report.seed, task_seed(9, &poison_key()) ^ 2);
        assert_eq!(*report.value(), report.seed);
        // Every healthy task succeeded on its first attempt.
        for t in &fleet.tasks {
            if t.key != poison_key() {
                assert_eq!(t.attempt, 0);
                assert_eq!(t.seed, task_seed(9, &t.key));
            }
        }
        // A retry budget below the flake threshold records the failure
        // at the final attempted seed.
        let fleet = run_with(
            &plan,
            9,
            4,
            FleetPolicy::keep_going().with_retries(1),
            flaky,
        );
        assert_eq!(fleet.failed(), 1);
        let failure = fleet.failures().next().unwrap();
        assert_eq!(failure.attempt, 1);
        assert_eq!(failure.seed, task_seed(9, &poison_key()) ^ 1);
    }

    #[test]
    fn failures_surface_in_json_dump() {
        let dir = std::env::temp_dir().join("fracdram_fleet_failure_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("failed.json");
        let fleet = run_with(&plan(), 9, 2, FleetPolicy::keep_going(), poisoned_task);
        fleet
            .write_json("unit", path.to_str().unwrap(), |v| Json::from(*v as f64))
            .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"failed\":1"), "{text}");
        assert!(text.contains("\"result\":null"), "{text}");
        assert!(text.contains("injected poison"), "{text}");
        assert!(text.contains("\"attempt\":0"), "{text}");
        for field in [
            "\"fault_sense_flips\":0",
            "\"fault_stuck_pins\":0",
            "\"fault_decoder_drops\":0",
            "\"fault_env_commands\":0",
        ] {
            assert!(text.contains(field), "{field} missing in {text}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "fleet task failed")]
    fn value_accessor_panics_on_failure() {
        let fleet = run_with(&plan(), 9, 1, FleetPolicy::keep_going(), poisoned_task);
        let report = fleet.tasks.iter().find(|t| t.failure().is_some()).unwrap();
        let _ = report.value();
    }

    fn stream_cfg(items: u64, chunk: u64, jobs: usize) -> StreamConfig {
        StreamConfig {
            items,
            chunk,
            jobs,
            base_seed: 77,
            window: 0,
        }
    }

    /// The byte-identity claim for floats: a sum folded per chunk and
    /// merged in chunk order is a fixed expression tree, so the f64
    /// *bits* match between jobs 1 and jobs 8 even though f64 addition
    /// is not associative.
    #[test]
    fn stream_float_fold_is_bit_identical_across_job_counts() {
        let fold = |chunk: u64, range: std::ops::Range<u64>| {
            let mut sum = 0.0f64;
            let mut count = 0u64;
            for i in range {
                // Scale-diverse addends make any reassociation visible
                // in the low mantissa bits.
                let seed = item_seed(77, i);
                sum += (seed as f64) * 1e-19 + (chunk as f64) * 1e-3 + 0.1;
                count += 1;
            }
            (sum, count)
        };
        let merge = |a: &mut (f64, u64), b: (f64, u64)| {
            a.0 += b.0;
            a.1 += b.1;
        };
        let serial = run_stream(&stream_cfg(10_000, 256, 1), fold, merge);
        let parallel = run_stream(&stream_cfg(10_000, 256, 8), fold, merge);
        let (sa, ca) = serial.result.unwrap();
        let (sp, cp) = parallel.result.unwrap();
        assert_eq!(
            sa.to_bits(),
            sp.to_bits(),
            "float merge must be bit-identical"
        );
        assert_eq!(ca, 10_000);
        assert_eq!(cp, 10_000);
        assert_eq!(serial.chunks, 40);
        assert!(serial.failures.is_empty() && parallel.failures.is_empty());
        // Serial merges strictly in order, so at most one accumulator
        // is ever pending.
        assert_eq!(serial.peak_pending, 1);
    }

    #[test]
    fn stream_window_bounds_pending_accumulators() {
        let cfg = StreamConfig {
            items: 4_000,
            chunk: 10,
            jobs: 8,
            base_seed: 1,
            window: 5,
        };
        let run = run_stream(&cfg, |_, range| range.count() as u64, |a, b| *a += b);
        assert_eq!(run.result, Some(4_000));
        assert_eq!(run.chunks, 400);
        // The claim gate admits at most `window` chunks past the merge
        // frontier, so the reducer can never have more than window + 1
        // outstanding (the +1 is the chunk being inserted before the
        // contiguous prefix drains).
        assert!(
            run.peak_pending <= 6,
            "peak_pending {} exceeded the window bound",
            run.peak_pending
        );
    }

    #[test]
    fn stream_handles_ragged_tail_and_empty_runs() {
        let run = run_stream(
            &stream_cfg(103, 10, 4),
            |_, r| r.sum::<u64>(),
            |a, b| *a += b,
        );
        assert_eq!(run.chunks, 11);
        assert_eq!(run.result, Some((0..103).sum()));
        let empty = run_stream(&stream_cfg(0, 10, 4), |_, r| r.sum::<u64>(), |a, b| *a += b);
        assert_eq!(empty.result, None);
        assert_eq!(empty.chunks, 0);
    }

    #[test]
    fn stream_item_seeds_are_index_pure() {
        assert_eq!(item_seed(9, 123), item_seed(9, 123));
        assert_ne!(item_seed(9, 123), item_seed(9, 124));
        assert_ne!(item_seed(9, 123), item_seed(10, 123));
    }

    #[test]
    fn stream_contains_a_panicking_chunk_without_deadlock() {
        let run = run_stream(
            &stream_cfg(1_000, 100, 4),
            |chunk, range| {
                assert!(chunk != 3, "injected stream poison");
                range.count() as u64
            },
            |a, b| *a += b,
        );
        assert_eq!(run.failures.len(), 1);
        assert_eq!(run.failures[0].chunk, 3);
        assert!(run.failures[0].message.contains("injected stream poison"));
        // Chunks 0..3 were produced before the poison; the stop keeps
        // the run from finishing the plan, and the caller treats the
        // failure list as fatal.
        assert!(run.result.unwrap() >= 300);
    }
}
