//! A deterministic parallel experiment fleet.
//!
//! Every paper-figure binary sweeps groups × modules × sub-arrays ×
//! configurations; each cell of that sweep is self-contained (one
//! [`fracdram_softmc::MemoryController`] owning one simulated
//! [`fracdram_model::Module`], sharing nothing). The fleet fans those
//! cells out over a worker thread pool and merges the results **in plan
//! order**, so the rendered figure is byte-identical at any `--jobs`
//! count:
//!
//! - the work plan is an explicit `Vec<TaskKey>` built up front;
//! - each task derives its own seed from the base seed and its
//!   coordinates ([`task_seed`]) instead of consuming a shared RNG;
//! - workers claim tasks from an atomic cursor and write results into
//!   the task's own plan slot — merge order never depends on thread
//!   scheduling.
//!
//! Observability: per-task wall time, per-task and aggregated
//! [`CycleStats`] from each task's controller, a progress line on
//! stderr as tasks complete, and an optional structured JSON dump
//! (`--json PATH`) for tracking benchmark trajectories across PRs.

use std::fmt;
use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use fracdram_model::{GroupId, ModelPerf};
use fracdram_softmc::{CycleStats, RunMetrics};
use fracdram_stats::rng::mix;

use crate::json::Json;

/// Coordinates of one fleet task inside a sweep.
///
/// `variant` distinguishes configurations that share the same physical
/// location (an F-MAJ config index, an environment condition, a sweep
/// point); plain location sweeps leave it 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskKey {
    /// DRAM group of the module under test.
    pub group: GroupId,
    /// Module index within the group.
    pub module: usize,
    /// Sub-array index within the module (0 when the task spans the
    /// whole module).
    pub subarray: usize,
    /// Configuration index within (group, module, subarray).
    pub variant: usize,
}

impl TaskKey {
    /// A task covering one (group, module, sub-array) cell.
    pub fn new(group: GroupId, module: usize, subarray: usize) -> Self {
        TaskKey {
            group,
            module,
            subarray,
            variant: 0,
        }
    }

    /// The same cell under a numbered configuration.
    pub fn with_variant(mut self, variant: usize) -> Self {
        self.variant = variant;
        self
    }
}

impl fmt::Display for TaskKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "group {} module {} sa {}",
            self.group, self.module, self.subarray
        )?;
        if self.variant != 0 {
            write!(f, " cfg {}", self.variant)?;
        }
        Ok(())
    }
}

/// Derives the task's private seed: `base_seed` mixed with the task
/// coordinates. The same (base seed, key) pair always yields the same
/// seed, and distinct keys yield independent streams — determinism at
/// any thread count follows.
pub fn task_seed(base_seed: u64, key: &TaskKey) -> u64 {
    base_seed
        ^ mix(
            base_seed,
            &[
                key.group as u64,
                key.module as u64,
                key.subarray as u64,
                key.variant as u64,
            ],
        )
}

/// One completed task: its key, payload, and observability data.
#[derive(Debug, Clone)]
pub struct TaskReport<T> {
    /// The task's coordinates in the plan.
    pub key: TaskKey,
    /// Seed the task ran with.
    pub seed: u64,
    /// The task function's result.
    pub value: T,
    /// Command counters from the task's controller(s).
    pub stats: CycleStats,
    /// Kernel performance counters from the task's simulated module(s).
    pub perf: ModelPerf,
    /// Wall time the task took.
    pub wall: Duration,
}

/// A finished fleet run: every task's report, in plan order.
#[derive(Debug)]
pub struct FleetRun<T> {
    /// Per-task reports, ordered exactly as the input plan.
    pub tasks: Vec<TaskReport<T>>,
    /// Worker threads used.
    pub jobs: usize,
    /// Base seed the per-task seeds derive from.
    pub base_seed: u64,
    /// Wall time of the whole fan-out.
    pub wall: Duration,
}

impl<T> FleetRun<T> {
    /// The task values in plan order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.tasks.iter().map(|t| &t.value)
    }

    /// Aggregated command counters across every task.
    pub fn total_stats(&self) -> CycleStats {
        let mut total = CycleStats::default();
        for t in &self.tasks {
            total.accumulate(&t.stats);
        }
        total
    }

    /// Aggregated kernel performance counters across every task.
    pub fn total_perf(&self) -> ModelPerf {
        let mut total = ModelPerf::default();
        for t in &self.tasks {
            total.accumulate(&t.perf);
        }
        total
    }

    /// One-line run summary for stderr (not part of figure output).
    pub fn summary(&self) -> String {
        let stats = self.total_stats();
        let perf = self.total_perf();
        format!(
            "fleet: {} task(s) on {} thread(s) in {:.3}s — {} DRAM commands ({} ACT, {} RD, {} WR); \
             kernels: {} events / {} columns, {} exp(), cache {}h/{}m, {:.1}ms in kernels; \
             snapshots {}h/{}m ({} B), exp memo {}h/{}m",
            self.tasks.len(),
            self.jobs,
            self.wall.as_secs_f64(),
            stats.commands,
            stats.activates,
            stats.reads,
            stats.writes,
            perf.events(),
            perf.columns,
            perf.exp_calls,
            perf.cache_hits,
            perf.cache_misses,
            perf.kernel_ns() as f64 / 1e6,
            perf.snapshot_hits,
            perf.snapshot_misses,
            perf.snapshot_bytes,
            perf.exp_memo_hits,
            perf.exp_memo_misses,
        )
    }

    /// Serializes the run — per-task wall time, counters, and a
    /// caller-provided projection of each value — and writes it to
    /// `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn write_json(
        &self,
        experiment: &str,
        path: &str,
        value_json: impl Fn(&T) -> Json,
    ) -> std::io::Result<()> {
        let tasks: Vec<Json> = self
            .tasks
            .iter()
            .map(|t| {
                Json::obj()
                    .field("group", t.key.group.to_string())
                    .field("module", t.key.module)
                    .field("subarray", t.key.subarray)
                    .field("variant", t.key.variant)
                    .field("seed", t.seed)
                    .field("wall_ms", t.wall.as_secs_f64() * 1e3)
                    .field("stats", stats_json(&t.stats))
                    .field("perf", perf_json(&t.perf))
                    .field("result", value_json(&t.value))
            })
            .collect();
        let doc = Json::obj()
            .field("experiment", experiment)
            .field("jobs", self.jobs)
            .field("base_seed", self.base_seed)
            .field("wall_ms", self.wall.as_secs_f64() * 1e3)
            .field("stats", stats_json(&self.total_stats()))
            .field("perf", perf_json(&self.total_perf()))
            .field("tasks", Json::Arr(tasks));
        let mut file = std::fs::File::create(path)?;
        writeln!(file, "{doc}")
    }
}

fn stats_json(s: &CycleStats) -> Json {
    Json::obj()
        .field("commands", s.commands)
        .field("activates", s.activates)
        .field("precharges", s.precharges)
        .field("reads", s.reads)
        .field("writes", s.writes)
        .field("refreshes", s.refreshes)
}

fn perf_json(p: &ModelPerf) -> Json {
    Json::obj()
        .field("share_events", p.share_events)
        .field("sense_events", p.sense_events)
        .field("close_events", p.close_events)
        .field("leak_events", p.leak_events)
        .field("columns", p.columns)
        .field("exp_calls", p.exp_calls)
        .field("cache_hits", p.cache_hits)
        .field("cache_misses", p.cache_misses)
        .field("snapshot_hits", p.snapshot_hits)
        .field("snapshot_misses", p.snapshot_misses)
        .field("snapshot_bytes", p.snapshot_bytes)
        .field("exp_memo_hits", p.exp_memo_hits)
        .field("exp_memo_misses", p.exp_memo_misses)
        .field("share_ns", p.share_ns)
        .field("sense_ns", p.sense_ns)
        .field("close_ns", p.close_ns)
        .field("leak_ns", p.leak_ns)
}

/// Runs `task` over every key in `plan` on `jobs` worker threads and
/// merges the reports in plan order.
///
/// The task function receives its key and derived seed and returns the
/// payload plus the metrics of whatever controllers it drove — command
/// counters and kernel counters together, normally
/// [`fracdram_softmc::MemoryController::metrics`] (pass
/// [`RunMetrics::default()`] when none). `jobs == 1` reproduces
/// serial execution exactly; any other count produces the same merged
/// reports because tasks share nothing and every task's randomness
/// derives from [`task_seed`].
///
/// Progress lines go to stderr; stdout stays reserved for figure
/// output so rendered figures are byte-identical at any job count.
///
/// # Panics
///
/// Panics when `jobs == 0` or a worker thread panics.
pub fn run<T, F>(plan: &[TaskKey], base_seed: u64, jobs: usize, task: F) -> FleetRun<T>
where
    T: Send,
    F: Fn(&TaskKey, u64) -> (T, RunMetrics) + Sync,
{
    assert!(jobs > 0, "fleet needs at least one worker");
    let started = Instant::now();
    let cursor = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<TaskReport<T>>>> = plan.iter().map(|_| Mutex::new(None)).collect();
    let workers = jobs.min(plan.len()).max(1);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(key) = plan.get(index) else {
                    break;
                };
                let seed = task_seed(base_seed, key);
                let task_started = Instant::now();
                let (value, metrics) = task(key, seed);
                let wall = task_started.elapsed();
                *slots[index].lock().unwrap() = Some(TaskReport {
                    key: *key,
                    seed,
                    value,
                    stats: metrics.cycles,
                    perf: metrics.model,
                    wall,
                });
                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                eprintln!(
                    "fleet: [{finished}/{}] {key}  {:.1}ms",
                    plan.len(),
                    wall.as_secs_f64() * 1e3
                );
            });
        }
    });

    let tasks = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every planned task completes")
        })
        .collect();
    FleetRun {
        tasks,
        jobs: workers,
        base_seed,
        wall: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> Vec<TaskKey> {
        let mut plan = Vec::new();
        for group in [GroupId::B, GroupId::C] {
            for module in 0..2 {
                for subarray in 0..3 {
                    plan.push(TaskKey::new(group, module, subarray));
                }
            }
        }
        plan
    }

    #[test]
    fn merge_preserves_plan_order() {
        let plan = plan();
        let run = run(&plan, 7, 4, |key, seed| {
            (
                (key.module * 10 + key.subarray, seed),
                RunMetrics::default(),
            )
        });
        assert_eq!(run.tasks.len(), plan.len());
        for (report, key) in run.tasks.iter().zip(&plan) {
            assert_eq!(report.key, *key);
            assert_eq!(report.value.0, key.module * 10 + key.subarray);
            assert_eq!(report.seed, task_seed(7, key));
        }
    }

    #[test]
    fn identical_results_at_any_job_count() {
        let plan = plan();
        let task = |key: &TaskKey, seed: u64| {
            let mut rng = fracdram_stats::rng::Rng::seed_from_u64(seed);
            let noise: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
            ((key.variant, noise), RunMetrics::default())
        };
        let serial = run(&plan, 42, 1, task);
        let parallel = run(&plan, 42, 8, task);
        let a: Vec<_> = serial.values().collect();
        let b: Vec<_> = parallel.values().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_are_distinct_per_task() {
        let plan = plan();
        let mut seen = std::collections::HashSet::new();
        for key in &plan {
            assert!(seen.insert(task_seed(5, key)), "seed collision at {key}");
        }
        // Variant changes the seed too.
        assert_ne!(
            task_seed(5, &plan[0]),
            task_seed(5, &plan[0].with_variant(1))
        );
    }

    #[test]
    fn stats_aggregate_across_tasks() {
        let plan = plan();
        let run = run(&plan, 1, 2, |_, _| {
            let metrics = RunMetrics {
                cycles: CycleStats {
                    commands: 3,
                    reads: 1,
                    ..CycleStats::default()
                },
                ..RunMetrics::default()
            };
            ((), metrics)
        });
        let total = run.total_stats();
        assert_eq!(total.commands, 3 * plan.len() as u64);
        assert_eq!(total.reads, plan.len() as u64);
        assert!(run.summary().contains("task(s)"));
    }

    #[test]
    fn perf_counters_surface_in_summary_and_json() {
        let plan = plan();
        let run = run(&plan, 1, 2, |_, _| {
            let metrics = RunMetrics {
                model: ModelPerf {
                    share_events: 2,
                    columns: 64,
                    exp_calls: 5,
                    cache_hits: 1,
                    cache_misses: 1,
                    snapshot_hits: 4,
                    snapshot_misses: 2,
                    snapshot_bytes: 1024,
                    exp_memo_hits: 7,
                    exp_memo_misses: 3,
                    ..ModelPerf::default()
                },
                ..RunMetrics::default()
            };
            ((), metrics)
        });
        let total = run.total_perf();
        assert_eq!(total.share_events, 2 * plan.len() as u64);
        assert_eq!(total.columns, 64 * plan.len() as u64);
        let summary = run.summary();
        assert!(summary.contains("kernels:"), "{summary}");
        assert!(
            summary.contains(&format!("{} exp()", total.exp_calls)),
            "{summary}"
        );
        assert!(
            summary.contains(&format!(
                "snapshots {}h/{}m ({} B)",
                total.snapshot_hits, total.snapshot_misses, total.snapshot_bytes
            )),
            "{summary}"
        );
        assert!(
            summary.contains(&format!(
                "exp memo {}h/{}m",
                total.exp_memo_hits, total.exp_memo_misses
            )),
            "{summary}"
        );

        let dir = std::env::temp_dir().join("fracdram_fleet_perf_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("perf.json");
        run.write_json("unit", path.to_str().unwrap(), |()| Json::from(0.0))
            .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"perf\":{"), "{text}");
        assert!(
            text.contains(&format!("\"share_events\":{}", total.share_events)),
            "{text}"
        );
        for field in [
            format!("\"snapshot_hits\":{}", total.snapshot_hits),
            format!("\"snapshot_misses\":{}", total.snapshot_misses),
            format!("\"snapshot_bytes\":{}", total.snapshot_bytes),
            format!("\"exp_memo_hits\":{}", total.exp_memo_hits),
            format!("\"exp_memo_misses\":{}", total.exp_memo_misses),
        ] {
            assert!(text.contains(&field), "{field} missing in {text}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_dump_is_valid_shape() {
        let dir = std::env::temp_dir().join("fracdram_fleet_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump.json");
        let run = run(&plan()[..2], 1, 1, |key, _| {
            (key.subarray as f64, RunMetrics::default())
        });
        run.write_json("unit", path.to_str().unwrap(), |v| Json::from(*v))
            .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        assert!(text.contains("\"experiment\":\"unit\""));
        assert!(text.contains("\"tasks\":["));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_jobs_panics() {
        let _ = run(&plan(), 0, 0, |_, _| ((), RunMetrics::default()));
    }
}
