//! A tiny JSON value builder and serializer.
//!
//! The experiment fleet dumps structured results (`--json PATH`) so
//! benchmark trajectories can be tracked across PRs. The workspace
//! builds fully offline, so instead of `serde_json` this module
//! provides the minimal value tree the dumps need, with correct string
//! escaping and float formatting.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a field to an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("Json::field on a non-object"),
        }
        self
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) if x.is_finite() => {
                if x.fract() == 0.0 && x.abs() < 9e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => escape(s, f),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::from(true).to_string(), "true");
        assert_eq!(Json::from(3usize).to_string(), "3");
        assert_eq!(Json::from(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Json::from("a\"b\\c\nd").to_string(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::from("\u{1}").to_string(), r#""\u0001""#);
    }

    #[test]
    fn arrays_and_objects() {
        let j = Json::obj()
            .field("name", "fig10")
            .field("values", vec![1.0, 2.5])
            .field("ok", true);
        assert_eq!(
            j.to_string(),
            r#"{"name":"fig10","values":[1,2.5],"ok":true}"#
        );
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn field_on_scalar_panics() {
        let _ = Json::Null.field("x", 1.0);
    }
}
