//! A tiny JSON value builder, serializer, and parser.
//!
//! The experiment fleet dumps structured results (`--json PATH`) so
//! benchmark trajectories can be tracked across PRs, and the
//! `fracdram-serve` daemon speaks line-delimited JSON on its socket.
//! The workspace builds fully offline, so instead of `serde_json` this
//! module provides the minimal value tree those uses need, with correct
//! string escaping, float formatting, and **exact integers**: die seeds
//! and FNV program hashes are full-range `u64` values, so integers get
//! their own [`Json::Int`] variant instead of being routed through
//! `f64` (which silently corrupts anything at or above 2⁵³).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An exact integer. Wide enough for the full `u64` and `i64`
    /// ranges, so seeds, hashes, and counters round-trip bit-exactly.
    Int(i128),
    /// A finite float (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a field to an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("Json::field on a non-object"),
        }
        self
    }

    /// Looks a field up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an exact integer ([`Json::Int`], or a [`Json::Num`]
    /// that happens to be integral — clients are allowed to send `3.0`).
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Num(x) if x.fract() == 0.0 && x.abs() < 9e15 => Some(*x as i128),
            _ => None,
        }
    }

    /// The value as a `u64`, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i128().and_then(|i| u64::try_from(i).ok())
    }

    /// The value as a `usize`, when exactly representable.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_i128().and_then(|i| usize::try_from(i).ok())
    }

    /// The value as a float (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error, with its byte
    /// offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Int(x as i128)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Int(i128::from(x))
    }
}

impl From<u32> for Json {
    fn from(x: u32) -> Json {
        Json::Int(i128::from(x))
    }
}

impl From<i64> for Json {
    fn from(x: i64) -> Json {
        Json::Int(i128::from(x))
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

fn escape(s: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Num(x) if x.is_finite() => {
                if x.fract() == 0.0 && x.abs() < 9e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => escape(s, f),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape(k, f)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Nesting depth beyond which [`Json::parse`] refuses (stack safety on
/// hostile socket input).
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // protocol; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| format!("bad UTF-8 at byte {start}"))?;
                    out.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::from(true).to_string(), "true");
        assert_eq!(Json::from(3usize).to_string(), "3");
        assert_eq!(Json::from(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Json::from("a\"b\\c\nd").to_string(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::from("\u{1}").to_string(), r#""\u0001""#);
    }

    #[test]
    fn arrays_and_objects() {
        let j = Json::obj()
            .field("name", "fig10")
            .field("values", vec![1.0, 2.5])
            .field("ok", true);
        assert_eq!(
            j.to_string(),
            r#"{"name":"fig10","values":[1,2.5],"ok":true}"#
        );
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn field_on_scalar_panics() {
        let _ = Json::Null.field("x", 1.0);
    }

    /// The regression this module exists for: `u64` seeds and hashes at
    /// or above 2⁵³ used to be routed through `f64` and silently
    /// rounded. They must round-trip exactly now.
    #[test]
    fn u64_round_trips_exactly() {
        for value in [
            u64::MAX,
            u64::MAX - 1,
            (1u64 << 53) + 1,
            0x9E37_79B9_7F4A_7C15,
            0,
        ] {
            let doc = Json::obj().field("seed", value).to_string();
            let parsed = Json::parse(&doc).unwrap();
            assert_eq!(
                parsed.get("seed").unwrap().as_u64(),
                Some(value),
                "{value} corrupted through {doc}"
            );
        }
        // The old behavior really was lossy.
        assert_ne!((u64::MAX as f64) as u128, u64::MAX as u128);
    }

    #[test]
    fn parse_round_trips_builder_output() {
        let j = Json::obj()
            .field("op", "trng")
            .field("die", 3usize)
            .field("hash", u64::MAX)
            .field("alpha", 0.25)
            .field("flags", vec![true, false])
            .field("nested", Json::obj().field("x", Json::Null));
        let text = j.to_string();
        assert_eq!(Json::parse(&text).unwrap(), j);
    }

    #[test]
    fn parse_accepts_whitespace_and_escapes() {
        let j = Json::parse(" { \"a\" : [ 1 , -2.5e2 , \"x\\ny\" ] } ").unwrap();
        let arr = match j.get("a").unwrap() {
            Json::Arr(v) => v,
            other => panic!("{other:?}"),
        };
        assert_eq!(arr[0], Json::Int(1));
        assert_eq!(arr[1], Json::Num(-250.0));
        assert_eq!(arr[2].as_str(), Some("x\ny"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err(), "depth limit");
    }

    #[test]
    fn accessors_convert() {
        let j = Json::obj()
            .field("i", 7u64)
            .field("f", 2.0)
            .field("s", "hi")
            .field("b", true);
        assert_eq!(j.get("i").unwrap().as_usize(), Some(7));
        assert_eq!(j.get("i").unwrap().as_f64(), Some(7.0));
        assert_eq!(j.get("f").unwrap().as_u64(), Some(2), "integral float");
        assert_eq!(j.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(j.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(j.get("missing"), None);
        assert_eq!(Json::Num(0.5).as_i128(), None);
        assert_eq!(Json::Int(-1).as_u64(), None);
    }
}
