//! ASCII rendering for the experiment reports: shade-character heatmaps
//! (Fig. 6/8), proportion bars (Fig. 7), and percentage formatting.

/// Shade characters from empty to full, used for heatmap cells.
const SHADES: [char; 5] = [' ', '░', '▒', '▓', '█'];

/// A heatmap cell character for a probability in `[0, 1]`.
pub fn shade(p: f64) -> char {
    let idx = (p.clamp(0.0, 1.0) * (SHADES.len() as f64 - 1.0)).round() as usize;
    SHADES[idx.min(SHADES.len() - 1)]
}

/// A horizontal bar of `width` characters for a proportion in `[0, 1]`.
pub fn bar(p: f64, width: usize) -> String {
    let filled = (p.clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

/// Percentage with one decimal: `42.3%`.
pub fn pct(p: f64) -> String {
    format!("{:.1}%", p * 100.0)
}

/// A ruled table row: values padded to `width` columns.
pub fn row(cells: &[String], width: usize) -> String {
    cells
        .iter()
        .map(|c| format!("{c:<width$}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Section header with an underline.
pub fn header(title: &str) -> String {
    format!("{title}\n{}", "─".repeat(title.chars().count()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shade_endpoints() {
        assert_eq!(shade(0.0), ' ');
        assert_eq!(shade(1.0), '█');
        assert_eq!(shade(-3.0), ' ');
        assert_eq!(shade(7.0), '█');
    }

    #[test]
    fn bar_is_fixed_width() {
        assert_eq!(bar(0.5, 10), "#####.....");
        assert_eq!(bar(0.0, 4), "....");
        assert_eq!(bar(1.0, 4), "####");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.423), "42.3%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn row_pads() {
        let r = row(&["a".into(), "bb".into()], 3);
        assert_eq!(r, "a   bb ");
    }

    #[test]
    fn header_underlines() {
        assert_eq!(header("Hi"), "Hi\n──");
    }
}
