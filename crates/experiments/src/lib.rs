//! Shared support for the experiment binaries: a tiny `--key value`
//! command-line parser, standard module setups, ASCII rendering
//! helpers for tables, bars, and heatmaps, and the deterministic
//! parallel [`fleet`] the heavy figure binaries fan their
//! group × module × sub-array sweeps out on.
//!
//! Every binary regenerates one table or figure of the FracDRAM paper;
//! see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
//! recorded paper-vs-measured results.

#![warn(missing_docs)]

pub mod cli;
pub mod fleet;
pub mod json;
pub mod population;
pub mod render;
pub mod setup;
pub mod store;
pub mod tasks;

pub use cli::{exit_json_write_error, Args};
pub use fleet::{task_seed, FailureMode, FleetPolicy, FleetRun, TaskFailure, TaskKey, TaskReport};
pub use json::Json;
