//! Shared support for the experiment binaries: a tiny `--key value`
//! command-line parser, standard module setups, and ASCII rendering
//! helpers for tables, bars, and heatmaps.
//!
//! Every binary regenerates one table or figure of the FracDRAM paper;
//! see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
//! recorded paper-vs-measured results.

#![warn(missing_docs)]

pub mod cli;
pub mod render;
pub mod setup;

pub use cli::Args;
