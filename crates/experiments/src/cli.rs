//! Minimal `--key value` argument parsing for the experiment binaries.
//!
//! Every experiment accepts overrides for its scale parameters (module
//! count, rows sampled, trial count, seed) so the paper-scale sweep can
//! be requested explicitly while the default run finishes in seconds.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

use crate::fleet::{FailureMode, FleetPolicy};

/// Keys that are value-less boolean flags rather than `--key value`
/// pairs.
const FLAG_KEYS: &[&str] = &["fail-fast", "keep-going", "shutdown", "no-fault"];

/// The usage banner a binary registered via [`Args::usage`], kept so
/// [`Args::reject_unknown`] can reprint it when a typo is detected.
#[derive(Debug, Clone, Default)]
struct UsageBanner {
    name: String,
    description: String,
    params: Vec<(String, String)>,
}

/// Parsed command-line arguments: `--key value` pairs, boolean flags,
/// plus a `--help` flag.
///
/// Every accessor records the key it consumed; [`Args::reject_unknown`]
/// then fails the process on any argument that was neither consumed nor
/// declared in the usage table — a typo like `--job 8` must not
/// silently run the default configuration.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: BTreeSet<String>,
    help: bool,
    consumed: RefCell<BTreeSet<String>>,
    banner: RefCell<UsageBanner>,
}

impl Args {
    /// Parses the process arguments.
    ///
    /// # Panics
    ///
    /// Panics (with a clear message) on a dangling `--key` without a
    /// value or a positional argument.
    pub fn parse() -> Self {
        Args::from_iter(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (testable entry point).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Args::parse`].
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut values = BTreeMap::new();
        let mut flags = BTreeSet::new();
        let mut help = false;
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            if arg == "--help" || arg == "-h" {
                help = true;
                continue;
            }
            let key = arg
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("unexpected positional argument {arg:?}"));
            if FLAG_KEYS.contains(&key) {
                flags.insert(key.to_string());
                continue;
            }
            let value = iter
                .next()
                .unwrap_or_else(|| panic!("--{key} requires a value"));
            values.insert(key.to_string(), value);
        }
        Args {
            values,
            flags,
            help,
            consumed: RefCell::new(BTreeSet::new()),
            banner: RefCell::new(UsageBanner::default()),
        }
    }

    /// Whether `--help` was passed.
    pub fn wants_help(&self) -> bool {
        self.help
    }

    fn consume(&self, key: &str) {
        self.consumed.borrow_mut().insert(key.to_string());
    }

    /// Keys that were passed on the command line but never consumed by
    /// an accessor nor declared in the usage table — typos, or flags
    /// meant for a different binary.
    pub fn unknown_keys(&self) -> Vec<String> {
        let consumed = self.consumed.borrow();
        let banner = self.banner.borrow();
        self.values
            .keys()
            .chain(self.flags.iter())
            .filter(|key| !consumed.contains(*key) && !banner.params.iter().any(|(k, _)| k == *key))
            .cloned()
            .collect()
    }

    /// Fails the process (exit status 2, help text on stderr) when any
    /// argument was never read — call this after the binary has pulled
    /// all its parameters. Without it, `--intrajobs 4` would silently
    /// run the default config.
    pub fn reject_unknown(&self) {
        let unknown = self.unknown_keys();
        if unknown.is_empty() {
            return;
        }
        let banner = self.banner.borrow();
        for key in &unknown {
            eprintln!("error: unknown argument --{key}");
        }
        if banner.name.is_empty() {
            eprintln!("(run with --help for usage)");
        } else {
            eprintln!("\n{} — {}\n", banner.name, banner.description);
            eprintln!("options:");
            for (key, what) in &banner.params {
                eprintln!("  --{key:<14} {what}");
            }
        }
        std::process::exit(2);
    }

    /// Reads a scaled integer for `key`, exiting with status 2 and a
    /// named error on a malformed value — population-scale counts are
    /// typed by hand (`--dies 2M`), and a typo must not silently run
    /// the default configuration or dump a panic backtrace.
    fn scaled(&self, key: &str, default: u64) -> u64 {
        self.consume(key);
        match self.values.get(key) {
            Some(v) => match parse_scaled(v) {
                Ok(n) => n,
                Err(why) => {
                    eprintln!(
                        "error: --{key} expects an integer (k/M/G suffixes allowed), \
                         got {v:?}: {why}"
                    );
                    std::process::exit(2);
                }
            },
            None => default,
        }
    }

    /// Integer parameter with a default. Accepts `k`/`M`/`G` scale
    /// suffixes (`--dies 2M` = 2,000,000); exits with status 2 on a
    /// malformed value.
    pub fn usize(&self, key: &str, default: usize) -> usize {
        self.scaled(key, default as u64) as usize
    }

    /// `u64` parameter with a default. Accepts `k`/`M`/`G` scale
    /// suffixes; exits with status 2 on a malformed value.
    pub fn u64(&self, key: &str, default: u64) -> u64 {
        self.scaled(key, default)
    }

    /// String parameter, if present.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.consume(key);
        self.values.get(key).map(String::as_str)
    }

    /// Worker thread count for the experiment fleet: `--jobs N`
    /// (default: all available cores; `--jobs 1` reproduces serial
    /// execution).
    ///
    /// # Panics
    ///
    /// Panics when the value does not parse or is zero.
    pub fn jobs(&self) -> usize {
        let jobs = self.usize(
            "jobs",
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        );
        assert!(jobs > 0, "--jobs must be at least 1");
        jobs
    }

    /// Intra-module worker count: `--intra-jobs N` (default 1). With a
    /// multi-chip module, each controller executes its chips on `N`
    /// parallel threads — byte-identical output, composing with the
    /// fleet's `--jobs`.
    ///
    /// # Panics
    ///
    /// Panics when the value does not parse or is zero.
    pub fn intra_jobs(&self) -> usize {
        let jobs = self.usize("intra-jobs", 1);
        assert!(jobs > 0, "--intra-jobs must be at least 1");
        jobs
    }

    /// Cross-bank batch scheduling switch: `--sched on|off` (default
    /// on). Off restores purely sequential program accounting. Either
    /// way the figure output is byte-identical; only the `sched_*`
    /// perf counters (and wall time on batch-heavy paths) move.
    ///
    /// # Panics
    ///
    /// Panics on a value other than `on` or `off`.
    pub fn sched(&self) -> bool {
        match self.str("sched").unwrap_or("on") {
            "on" => true,
            "off" => false,
            v => panic!("--sched expects on or off, got {v:?}"),
        }
    }

    /// Structured results dump path: `--json PATH`.
    pub fn json_path(&self) -> Option<&str> {
        self.str("json")
    }

    /// Whether a boolean flag (e.g. `--keep-going`) was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.consume(key);
        self.flags.contains(key)
    }

    /// Fleet failure policy: `--fail-fast` (default) stops claiming new
    /// tasks after the first failure; `--keep-going` completes the rest
    /// of the plan and reports the failures. `--retries N` re-runs a
    /// failing task up to `N` more times with a perturbed seed before
    /// recording the failure.
    ///
    /// # Panics
    ///
    /// Panics when both `--fail-fast` and `--keep-going` are passed.
    pub fn failure_policy(&self) -> FleetPolicy {
        assert!(
            !(self.flag("fail-fast") && self.flag("keep-going")),
            "--fail-fast and --keep-going are mutually exclusive"
        );
        let mode = if self.flag("keep-going") {
            FailureMode::KeepGoing
        } else {
            FailureMode::FailFast
        };
        let retries = self.usize("retries", 0) as u32;
        FleetPolicy { mode, retries }
    }

    /// Float parameter with a default.
    ///
    /// # Panics
    ///
    /// Panics when the value does not parse.
    pub fn f64(&self, key: &str, default: f64) -> f64 {
        self.consume(key);
        match self.values.get(key) {
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("--{key} expects a number, got {v:?}")),
            None => default,
        }
    }

    /// Prints a standard usage banner and returns `true` when the caller
    /// should exit (i.e. `--help` was requested).
    pub fn usage(&self, name: &str, description: &str, params: &[(&str, &str)]) -> bool {
        *self.banner.borrow_mut() = UsageBanner {
            name: name.to_string(),
            description: description.to_string(),
            params: params
                .iter()
                .map(|(k, w)| (k.to_string(), w.to_string()))
                .collect(),
        };
        if !self.help {
            return false;
        }
        println!("{name} — {description}\n");
        println!("options:");
        for (key, what) in params {
            println!("  --{key:<14} {what}");
        }
        true
    }
}

/// Parses a non-negative integer with an optional metric scale suffix:
/// `k`/`K` ×10³, `m`/`M` ×10⁶, `g`/`G` ×10⁹ — so population-scale runs
/// read naturally (`--dies 2M`, `--chunk 50k`).
///
/// # Errors
///
/// Returns a human-readable description of what was malformed: an
/// unknown suffix letter, missing digits, a non-integer mantissa, or a
/// scaled value that overflows `u64`.
pub fn parse_scaled(v: &str) -> Result<u64, String> {
    let (digits, scale) = match v.char_indices().last() {
        Some((i, c)) if c.is_ascii_alphabetic() => {
            let scale = match c {
                'k' | 'K' => 1_000u64,
                'm' | 'M' => 1_000_000,
                'g' | 'G' => 1_000_000_000,
                _ => return Err(format!("unknown scale suffix {c:?} (use k, M, or G)")),
            };
            (&v[..i], scale)
        }
        _ => (v, 1),
    };
    if digits.is_empty() {
        return Err("missing digits before the scale suffix".to_string());
    }
    let base: u64 = digits
        .parse()
        .map_err(|_| format!("{digits:?} is not an unsigned integer"))?;
    base.checked_mul(scale)
        .ok_or_else(|| format!("{v:?} overflows a 64-bit count"))
}

/// Reports a failed `--json PATH` dump on stderr and exits with status
/// 1, so an unwritable path yields a named error instead of a panic
/// backtrace.
pub fn exit_json_write_error(path: &str, err: &std::io::Error) -> ! {
    eprintln!("error: could not write --json dump to {path}: {err}");
    std::process::exit(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::from_iter(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_key_value_pairs() {
        let a = args(&["--chips", "4", "--trials", "100"]);
        assert_eq!(a.usize("chips", 1), 4);
        assert_eq!(a.usize("trials", 1), 100);
        assert_eq!(a.usize("rows", 7), 7, "default when absent");
        assert!(!a.wants_help());
    }

    #[test]
    fn parses_help() {
        assert!(args(&["--help"]).wants_help());
        assert!(args(&["-h"]).wants_help());
    }

    #[test]
    fn u64_and_f64() {
        let a = args(&["--seed", "99", "--alpha", "0.5"]);
        assert_eq!(a.u64("seed", 1), 99);
        assert_eq!(a.f64("alpha", 0.0), 0.5);
    }

    #[test]
    fn jobs_and_json() {
        let a = args(&["--jobs", "4", "--json", "out.json"]);
        assert_eq!(a.jobs(), 4);
        assert_eq!(a.json_path(), Some("out.json"));
        let d = args(&[]);
        assert!(d.jobs() >= 1, "default jobs from core count");
        assert_eq!(d.json_path(), None);
        assert_eq!(d.str("missing"), None);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_jobs_panics() {
        args(&["--jobs", "0"]).jobs();
    }

    #[test]
    fn sched_switch() {
        assert!(args(&[]).sched(), "defaults to on");
        assert!(args(&["--sched", "on"]).sched());
        assert!(!args(&["--sched", "off"]).sched());
    }

    #[test]
    #[should_panic(expected = "expects on or off")]
    fn bad_sched_value_panics() {
        args(&["--sched", "maybe"]).sched();
    }

    #[test]
    fn failure_policy_flags() {
        let d = args(&[]);
        assert_eq!(d.failure_policy(), FleetPolicy::fail_fast());
        let k = args(&["--keep-going", "--retries", "2"]);
        assert!(k.flag("keep-going"));
        assert_eq!(
            k.failure_policy(),
            FleetPolicy::keep_going().with_retries(2)
        );
        let f = args(&["--fail-fast"]);
        assert_eq!(f.failure_policy().mode, FailureMode::FailFast);
        // Flags take no value: a following pair still parses.
        let mixed = args(&["--keep-going", "--jobs", "3"]);
        assert_eq!(mixed.jobs(), 3);
        assert!(mixed.flag("keep-going"));
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn conflicting_policy_flags_panic() {
        args(&["--fail-fast", "--keep-going"]).failure_policy();
    }

    #[test]
    #[should_panic(expected = "requires a value")]
    fn dangling_key_panics() {
        args(&["--chips"]);
    }

    #[test]
    #[should_panic(expected = "positional")]
    fn positional_panics() {
        args(&["chips"]);
    }

    // A malformed integer exits the process with status 2 (via
    // `scaled`), which a unit test cannot catch in-process — the
    // parser itself is exercised here, and the exit path is covered by
    // the `population_stream` integration test spawning a real binary.
    #[test]
    fn scale_suffixes_parse() {
        assert_eq!(parse_scaled("0"), Ok(0));
        assert_eq!(parse_scaled("1234"), Ok(1234));
        assert_eq!(parse_scaled("50k"), Ok(50_000));
        assert_eq!(parse_scaled("50K"), Ok(50_000));
        assert_eq!(parse_scaled("2M"), Ok(2_000_000));
        assert_eq!(parse_scaled("2m"), Ok(2_000_000));
        assert_eq!(parse_scaled("3G"), Ok(3_000_000_000));
    }

    #[test]
    fn malformed_scale_suffixes_name_the_problem() {
        assert!(parse_scaled("four")
            .unwrap_err()
            .contains("unknown scale suffix"));
        assert!(parse_scaled("2T")
            .unwrap_err()
            .contains("unknown scale suffix"));
        assert!(parse_scaled("4x4")
            .unwrap_err()
            .contains("not an unsigned integer"));
        assert!(parse_scaled("k").unwrap_err().contains("missing digits"));
        assert!(parse_scaled("1.5M")
            .unwrap_err()
            .contains("not an unsigned integer"));
        assert!(parse_scaled("-3k")
            .unwrap_err()
            .contains("not an unsigned integer"));
        assert!(parse_scaled("99999999999999999999G")
            .unwrap_err()
            .contains("not an unsigned integer"));
        assert!(parse_scaled("18446744073709551615k")
            .unwrap_err()
            .contains("overflows"));
    }

    #[test]
    fn suffixed_values_flow_through_accessors() {
        let a = args(&["--dies", "2M", "--chunk", "50k", "--seed", "1k"]);
        assert_eq!(a.usize("dies", 1), 2_000_000);
        assert_eq!(a.usize("chunk", 1), 50_000);
        assert_eq!(a.u64("seed", 0), 1_000);
    }

    /// The typo regression: a `--key value` pair nobody reads must be
    /// reported, not silently ignored.
    #[test]
    fn unread_keys_are_unknown() {
        let a = args(&["--job", "8", "--trials", "5", "--intrajobs", "4"]);
        let _ = a.usize("trials", 1);
        assert_eq!(a.unknown_keys(), vec!["intrajobs", "job"]);
        // Reading the rest clears them.
        let _ = a.usize("job", 1);
        let _ = a.usize("intrajobs", 1);
        assert!(a.unknown_keys().is_empty());
    }

    #[test]
    fn declared_usage_params_count_as_known() {
        let a = args(&["--json", "out.json", "--chips", "2"]);
        let _ = a.usize("chips", 1);
        // `--json` is read late by the binaries; declaring it in the
        // usage table keeps it accepted before that read happens.
        assert_eq!(a.unknown_keys(), vec!["json"]);
        a.usage("unit", "test binary", &[("json", "dump path")]);
        assert!(a.unknown_keys().is_empty());
    }

    #[test]
    fn unconsumed_flags_are_unknown() {
        let a = args(&["--keep-going"]);
        assert_eq!(a.unknown_keys(), vec!["keep-going"]);
        a.failure_policy();
        assert!(a.unknown_keys().is_empty());
    }
}
