//! Compact fixed-width binary result store for population-scale runs.
//!
//! One 48-byte record per die — seed, group, flags, four f32 fingerprint
//! features, a 128-bit PUF fingerprint, and a per-record FNV-1a32
//! checksum — appended sequentially per chunk behind a 48-byte
//! FNV-checksummed header. The format is deliberately dumb: fixed
//! width, little-endian, no compression, no index — a million dies is
//! 48 MB, written append-only by the stream reducer (single thread, in
//! chunk order) and read back by a plain sequential reader, no mmap.
//!
//! The header records the **chunk size** of the run that wrote it.
//! Aggregates merged in chunk order are a fixed floating-point
//! expression tree, so a `--replay` that folds the store with the same
//! chunk structure reproduces the original aggregate block
//! bit-for-bit; the chunk size is therefore part of the data's
//! identity, not a tuning knob, and lives in the file.
//!
//! Layout (all little-endian):
//!
//! ```text
//! header, 48 bytes:
//!   0  8   magic  "FRACPOP\0"
//!   8  4   format version (1)
//!   12 4   record length (48)
//!   16 8   chunk size of the writing run
//!   24 8   base seed
//!   32 8   die count the writer planned
//!   40 8   FNV-1a64 over bytes 0..40
//! record, 48 bytes:
//!   0  8   die seed
//!   8  1   group id (0..12 → A..L)
//!   9  1   flags (bit 0: PUF fingerprint valid)
//!   10 2   reserved (0)
//!   12 16  4 × f32 fingerprint features
//!   28 16  128-bit PUF fingerprint
//!   44 4   FNV-1a32 over bytes 0..44
//! ```
//!
//! Durability model: a crash (or a deliberately truncated copy) can
//! leave a torn record at the tail. The reader validates each record's
//! checksum and stops at the first short or corrupt one, returning the
//! valid prefix — the same truncate-at-tear contract the serve WAL
//! uses.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use fracdram_model::GroupId;

/// Store format magic, version, and sizes.
pub const MAGIC: [u8; 8] = *b"FRACPOP\0";
/// Current format version.
pub const VERSION: u32 = 1;
/// Bytes per die record.
pub const RECORD_LEN: usize = 48;
/// Bytes in the file header.
pub const HEADER_LEN: usize = 48;

/// Record flag bit: the 128-bit PUF fingerprint is populated (clear on
/// timing-guarded groups J–L, whose chips reject fractional commands).
pub const FLAG_PUF_VALID: u8 = 1;

const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV32_OFFSET: u32 = 0x811c_9dc5;
const FNV32_PRIME: u32 = 0x0100_0193;

/// FNV-1a64 over a byte slice (header checksum and whole-store digest).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV64_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV64_PRIME);
    }
    hash
}

fn fnv1a64_step(hash: u64, bytes: &[u8]) -> u64 {
    let mut hash = hash;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV64_PRIME);
    }
    hash
}

/// FNV-1a32 over a byte slice (per-record checksum).
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut hash = FNV32_OFFSET;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(FNV32_PRIME);
    }
    hash
}

/// The store header: run parameters that are part of the data's
/// identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreHeader {
    /// Chunk size of the run that wrote the store (replay folds with
    /// the same chunk structure to reproduce aggregates bit-for-bit).
    pub chunk: u64,
    /// Base seed of the writing run.
    pub base_seed: u64,
    /// Die count the writer planned (the readable record count can be
    /// smaller after a torn tail).
    pub dies: u64,
}

impl StoreHeader {
    fn encode(&self) -> [u8; HEADER_LEN] {
        let mut buf = [0u8; HEADER_LEN];
        buf[0..8].copy_from_slice(&MAGIC);
        buf[8..12].copy_from_slice(&VERSION.to_le_bytes());
        buf[12..16].copy_from_slice(&(RECORD_LEN as u32).to_le_bytes());
        buf[16..24].copy_from_slice(&self.chunk.to_le_bytes());
        buf[24..32].copy_from_slice(&self.base_seed.to_le_bytes());
        buf[32..40].copy_from_slice(&self.dies.to_le_bytes());
        let checksum = fnv1a64(&buf[0..40]);
        buf[40..48].copy_from_slice(&checksum.to_le_bytes());
        buf
    }

    fn decode(buf: &[u8; HEADER_LEN]) -> io::Result<Self> {
        let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        if buf[0..8] != MAGIC {
            return Err(bad("not a FRACPOP store (bad magic)"));
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(bad(&format!("unsupported store version {version}")));
        }
        let record_len = u32::from_le_bytes(buf[12..16].try_into().unwrap());
        if record_len as usize != RECORD_LEN {
            return Err(bad(&format!("unsupported record length {record_len}")));
        }
        let checksum = u64::from_le_bytes(buf[40..48].try_into().unwrap());
        if checksum != fnv1a64(&buf[0..40]) {
            return Err(bad("store header checksum mismatch"));
        }
        Ok(StoreHeader {
            chunk: u64::from_le_bytes(buf[16..24].try_into().unwrap()),
            base_seed: u64::from_le_bytes(buf[24..32].try_into().unwrap()),
            dies: u64::from_le_bytes(buf[32..40].try_into().unwrap()),
        })
    }
}

/// One die's stored fingerprint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieRecord {
    /// The die's private seed ([`crate::fleet::item_seed`] of its
    /// global index).
    pub seed: u64,
    /// Vendor/profile group the die was simulated as.
    pub group: GroupId,
    /// Record flags ([`FLAG_PUF_VALID`]).
    pub flags: u8,
    /// Fingerprint features: [PUF Hamming weight, cross-challenge HD,
    /// retention fail fraction @30 min, @4 h].
    pub features: [f32; 4],
    /// 128-bit Frac-PUF fingerprint (zero when not [`FLAG_PUF_VALID`]).
    pub fingerprint: [u8; 16],
}

impl DieRecord {
    /// Whether the PUF fingerprint bytes are meaningful.
    pub fn puf_valid(&self) -> bool {
        self.flags & FLAG_PUF_VALID != 0
    }

    fn encode(&self) -> [u8; RECORD_LEN] {
        let mut buf = [0u8; RECORD_LEN];
        buf[0..8].copy_from_slice(&self.seed.to_le_bytes());
        buf[8] = self.group as u8;
        buf[9] = self.flags;
        for (i, f) in self.features.iter().enumerate() {
            buf[12 + i * 4..16 + i * 4].copy_from_slice(&f.to_le_bytes());
        }
        buf[28..44].copy_from_slice(&self.fingerprint);
        let checksum = fnv1a32(&buf[0..44]);
        buf[44..48].copy_from_slice(&checksum.to_le_bytes());
        buf
    }

    fn decode(buf: &[u8; RECORD_LEN]) -> Option<Self> {
        let checksum = u32::from_le_bytes(buf[44..48].try_into().unwrap());
        if checksum != fnv1a32(&buf[0..44]) {
            return None;
        }
        let group = *GroupId::ALL.get(buf[8] as usize)?;
        let mut features = [0f32; 4];
        for (i, f) in features.iter_mut().enumerate() {
            *f = f32::from_le_bytes(buf[12 + i * 4..16 + i * 4].try_into().unwrap());
        }
        let mut fingerprint = [0u8; 16];
        fingerprint.copy_from_slice(&buf[28..44]);
        Some(DieRecord {
            seed: u64::from_le_bytes(buf[0..8].try_into().unwrap()),
            group,
            flags: buf[9],
            features,
            fingerprint,
        })
    }
}

/// Append-only store writer. Records are buffered through a
/// `BufWriter`; the stream reducer calls [`StoreWriter::append_chunk`]
/// once per chunk, in chunk order, so the file's record order is the
/// global die order by construction.
#[derive(Debug)]
pub struct StoreWriter {
    file: BufWriter<File>,
    digest: u64,
    written: u64,
}

impl StoreWriter {
    /// Creates the store file and writes its header.
    ///
    /// # Errors
    ///
    /// Propagates file creation/write errors.
    pub fn create(path: &Path, header: StoreHeader) -> io::Result<Self> {
        let mut file = BufWriter::new(File::create(path)?);
        file.write_all(&header.encode())?;
        Ok(StoreWriter {
            file,
            digest: FNV64_OFFSET,
            written: 0,
        })
    }

    /// Appends one chunk's records.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn append_chunk(&mut self, records: &[DieRecord]) -> io::Result<()> {
        for record in records {
            let buf = record.encode();
            self.digest = fnv1a64_step(self.digest, &buf);
            self.file.write_all(&buf)?;
        }
        self.written += records.len() as u64;
        Ok(())
    }

    /// Flushes and closes the store, returning `(records written,
    /// FNV-1a64 digest over all record bytes)`. The digest is what the
    /// CI smoke compares across job counts.
    ///
    /// # Errors
    ///
    /// Propagates the final flush error.
    pub fn finish(mut self) -> io::Result<(u64, u64)> {
        self.file.flush()?;
        Ok((self.written, self.digest))
    }
}

/// Sequential store reader: header up front, then records in file
/// order, stopping cleanly at a torn tail.
#[derive(Debug)]
pub struct StoreReader {
    file: BufReader<File>,
    header: StoreHeader,
    digest: u64,
    read: u64,
    torn: bool,
}

impl StoreReader {
    /// Opens a store and validates its header.
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` on a bad magic/version/checksum.
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut file = BufReader::new(File::open(path)?);
        let mut buf = [0u8; HEADER_LEN];
        file.read_exact(&mut buf)?;
        let header = StoreHeader::decode(&buf)?;
        Ok(StoreReader {
            file,
            header,
            digest: FNV64_OFFSET,
            read: 0,
            torn: false,
        })
    }

    /// The validated header.
    pub fn header(&self) -> &StoreHeader {
        &self.header
    }

    /// Reads the next record, or `None` at end-of-file — including a
    /// torn tail: a short or checksum-corrupt trailing record ends the
    /// stream (setting [`StoreReader::torn`]) instead of erroring, so a
    /// crash-truncated store replays its valid prefix.
    ///
    /// # Errors
    ///
    /// Propagates underlying read errors other than a clean EOF.
    pub fn next_record(&mut self) -> io::Result<Option<DieRecord>> {
        if self.torn {
            return Ok(None);
        }
        let mut buf = [0u8; RECORD_LEN];
        let mut filled = 0;
        while filled < RECORD_LEN {
            match self.file.read(&mut buf[filled..]) {
                Ok(0) => {
                    if filled > 0 {
                        self.torn = true;
                    }
                    return Ok(None);
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        match DieRecord::decode(&buf) {
            Some(record) => {
                self.digest = fnv1a64_step(self.digest, &buf);
                self.read += 1;
                Ok(Some(record))
            }
            None => {
                self.torn = true;
                Ok(None)
            }
        }
    }

    /// Records successfully read so far.
    pub fn records_read(&self) -> u64 {
        self.read
    }

    /// Whether reading stopped at a torn/corrupt tail rather than a
    /// clean end-of-file.
    pub fn torn(&self) -> bool {
        self.torn
    }

    /// FNV-1a64 digest over the record bytes read so far — matches the
    /// writer's digest after a clean full read.
    pub fn digest(&self) -> u64 {
        self.digest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: u64) -> DieRecord {
        DieRecord {
            seed: i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            group: GroupId::ALL[(i % 12) as usize],
            flags: u8::from(i % 12 < 9),
            features: [i as f32, 0.5, 0.25 * i as f32, -1.0],
            fingerprint: {
                let mut fp = [0u8; 16];
                fp[0..8].copy_from_slice(&i.to_le_bytes());
                fp[8..16].copy_from_slice(&(!i).to_le_bytes());
                fp
            },
        }
    }

    fn temp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("fracdram_store_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip_preserves_records_and_digest() {
        let path = temp("round_trip.bin");
        let header = StoreHeader {
            chunk: 16,
            base_seed: 42,
            dies: 50,
        };
        let mut writer = StoreWriter::create(&path, header).unwrap();
        let records: Vec<DieRecord> = (0..50).map(record).collect();
        for chunk in records.chunks(16) {
            writer.append_chunk(chunk).unwrap();
        }
        let (written, wdigest) = writer.finish().unwrap();
        assert_eq!(written, 50);

        let mut reader = StoreReader::open(&path).unwrap();
        assert_eq!(*reader.header(), header);
        let mut got = Vec::new();
        while let Some(r) = reader.next_record().unwrap() {
            got.push(r);
        }
        assert_eq!(got, records);
        assert!(!reader.torn());
        assert_eq!(reader.records_read(), 50);
        assert_eq!(reader.digest(), wdigest, "reader digest must match writer");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_truncates_to_the_valid_prefix() {
        let path = temp("torn.bin");
        let header = StoreHeader {
            chunk: 8,
            base_seed: 7,
            dies: 10,
        };
        let mut writer = StoreWriter::create(&path, header).unwrap();
        writer
            .append_chunk(&(0..10).map(record).collect::<Vec<_>>())
            .unwrap();
        writer.finish().unwrap();
        // Tear the file mid-record: 7 full records plus 20 stray bytes.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..HEADER_LEN + 7 * RECORD_LEN + 20]).unwrap();

        let mut reader = StoreReader::open(&path).unwrap();
        let mut got = 0;
        while let Some(r) = reader.next_record().unwrap() {
            assert_eq!(r, record(got));
            got += 1;
        }
        assert_eq!(got, 7, "only the intact prefix is readable");
        assert!(reader.torn());
        // A torn reader stays ended.
        assert!(reader.next_record().unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_record_checksum_ends_the_stream() {
        let path = temp("corrupt.bin");
        let header = StoreHeader {
            chunk: 8,
            base_seed: 7,
            dies: 5,
        };
        let mut writer = StoreWriter::create(&path, header).unwrap();
        writer
            .append_chunk(&(0..5).map(record).collect::<Vec<_>>())
            .unwrap();
        writer.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte in the third record's feature area.
        bytes[HEADER_LEN + 2 * RECORD_LEN + 13] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let mut reader = StoreReader::open(&path).unwrap();
        let mut got = 0;
        while reader.next_record().unwrap().is_some() {
            got += 1;
        }
        assert_eq!(got, 2);
        assert!(reader.torn());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_corruption_is_an_error() {
        let path = temp("bad_header.bin");
        let header = StoreHeader {
            chunk: 8,
            base_seed: 7,
            dies: 0,
        };
        let writer = StoreWriter::create(&path, header).unwrap();
        writer.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 1; // chunk-size field, invalidates the checksum
        std::fs::write(&path, &bytes).unwrap();
        let err = StoreReader::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");

        // Wrong magic is named as such.
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        let err = StoreReader::open(&path).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn record_encoding_is_48_bytes_and_stable() {
        let r = record(3);
        let buf = r.encode();
        assert_eq!(buf.len(), RECORD_LEN);
        assert_eq!(DieRecord::decode(&buf), Some(r));
        assert_eq!(&buf[10..12], &[0, 0], "reserved bytes stay zero");
    }
}
