//! Shared fleet task bodies.
//!
//! The stability/coverage loop bodies that used to be duplicated across
//! the figure binaries (`fig10_fmaj_stability`, `ablation`, …) live
//! here so every binary — serial or fleet-parallel — runs the exact
//! same measurement code.

use fracdram::fmaj::{FmajConfig, FmajPlan};
use fracdram::maj3::Maj3Plan;
use fracdram::rowsets::{Quad, Triplet};
use fracdram::session::TrialRunner;
use fracdram_softmc::MemoryController;
use fracdram_stats::rng::Rng;

/// Refills three full-width operand rows in place. The trial hot loops
/// reuse one set of buffers across all trials instead of allocating
/// three rows per trial; the draw order matches `gen_bools` exactly, so
/// measurements are unchanged.
pub fn fill_operands(rng: &mut Rng, operands: &mut [Vec<bool>; 3]) {
    for op in operands {
        rng.fill_bools(op);
    }
}

/// Per-column success rate of F-MAJ over `trials` random-input trials —
/// the Fig. 10b/c measurement body.
///
/// # Panics
///
/// Panics when the F-MAJ operation itself fails (unsupported group or
/// structural controller error).
pub fn stability_fmaj(
    mc: &mut MemoryController,
    quad: &Quad,
    config: &FmajConfig,
    trials: usize,
    rng: &mut Rng,
) -> Vec<f64> {
    let width = mc.module().row_bits();
    let mut correct = vec![0usize; width];
    let plan = FmajPlan::new(mc, quad, config).expect("fmaj plan");
    let mut runner = TrialRunner::new(mc);
    runner.run_arena(trials, |mc, arena, _| {
        let mut operands = [arena.take(), arena.take(), arena.take()];
        fill_operands(rng, &mut operands);
        let [a, b, c] = &operands;
        let result = plan.run(mc, [a, b, c]).expect("fmaj");
        tally_majority(&mut correct, &result, [a, b, c]);
        arena.give(result);
        let [a, b, c] = operands;
        arena.give(a);
        arena.give(b);
        arena.give(c);
    });
    rates(correct, trials)
}

/// Per-column success rate of the baseline MAJ3 over `trials`
/// random-input trials.
///
/// # Panics
///
/// Panics when the MAJ3 operation itself fails.
pub fn stability_maj3(
    mc: &mut MemoryController,
    triplet: &Triplet,
    trials: usize,
    rng: &mut Rng,
) -> Vec<f64> {
    let width = mc.module().row_bits();
    let mut correct = vec![0usize; width];
    let plan = Maj3Plan::new(mc, triplet).expect("maj3 plan");
    let mut runner = TrialRunner::new(mc);
    runner.run_arena(trials, |mc, arena, _| {
        let mut operands = [arena.take(), arena.take(), arena.take()];
        fill_operands(rng, &mut operands);
        let [a, b, c] = &operands;
        let result = plan.run(mc, [a, b, c]).expect("maj3");
        tally_majority(&mut correct, &result, [a, b, c]);
        arena.give(result);
        let [a, b, c] = operands;
        arena.give(a);
        arena.give(b);
        arena.give(c);
    });
    rates(correct, trials)
}

/// Adds one trial's per-column verdicts into the success counters.
fn tally_majority(correct: &mut [usize], result: &[bool], operands: [&Vec<bool>; 3]) {
    let [a, b, c] = operands;
    for col in 0..correct.len() {
        let expect = [a[col], b[col], c[col]].iter().filter(|&&x| x).count() >= 2;
        if result[col] == expect {
            correct[col] += 1;
        }
    }
}

fn rates(correct: Vec<usize>, trials: usize) -> Vec<f64> {
    correct
        .into_iter()
        .map(|c| c as f64 / trials as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup;
    use fracdram_model::{GroupId, SubarrayAddr};

    #[test]
    fn stability_bodies_agree_with_inline_loop() {
        let seed = 3;
        let trials = 4;
        let mut mc = setup::controller(GroupId::B, setup::compute_geometry(), seed);
        let geometry = *mc.module().geometry();
        let quad = Quad::canonical(&geometry, SubarrayAddr::new(0, 0), GroupId::B).expect("quad");
        let config = FmajConfig::best_for(GroupId::B);
        let stab = stability_fmaj(&mut mc, &quad, &config, trials, &mut Rng::seed_from_u64(1));
        assert_eq!(stab.len(), mc.module().row_bits());
        assert!(stab.iter().all(|&s| (0.0..=1.0).contains(&s)));

        // Same seed, fresh controller: identical measurement.
        let mut mc2 = setup::controller(GroupId::B, setup::compute_geometry(), seed);
        let stab2 = stability_fmaj(&mut mc2, &quad, &config, trials, &mut Rng::seed_from_u64(1));
        assert_eq!(stab, stab2);
    }

    #[test]
    fn stability_trials_hit_the_prefix_cache() {
        let mut mc = setup::controller(GroupId::B, setup::compute_geometry(), 9);
        let geometry = *mc.module().geometry();
        let quad = Quad::canonical(&geometry, SubarrayAddr::new(0, 0), GroupId::B).expect("quad");
        let config = FmajConfig::best_for(GroupId::B);
        stability_fmaj(&mut mc, &quad, &config, 4, &mut Rng::seed_from_u64(7));
        let perf = mc.model_perf();
        assert!(
            perf.snapshot_hits > perf.snapshot_misses,
            "trial prefix mostly restored: {perf:?}"
        );
    }

    #[test]
    fn stability_results_identical_with_prefix_cache_off() {
        let run = |cache: bool| {
            let mut mc = setup::controller(GroupId::B, setup::compute_geometry(), 11);
            mc.set_prefix_caching(cache);
            let geometry = *mc.module().geometry();
            let quad =
                Quad::canonical(&geometry, SubarrayAddr::new(0, 0), GroupId::B).expect("quad");
            let config = FmajConfig::best_for(GroupId::B);
            stability_fmaj(&mut mc, &quad, &config, 4, &mut Rng::seed_from_u64(5))
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn maj3_body_runs_on_group_b() {
        let mut mc = setup::controller(GroupId::B, setup::compute_geometry(), 5);
        let geometry = *mc.module().geometry();
        let triplet = Triplet::first(&geometry, SubarrayAddr::new(0, 0));
        let stab = stability_maj3(&mut mc, &triplet, 3, &mut Rng::seed_from_u64(2));
        assert_eq!(stab.len(), mc.module().row_bits());
    }
}
