//! Standard module setups for the experiments.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use fracdram_model::{DeviceParams, Geometry, GroupId, MaterializeCache, Module, ModuleConfig};
use fracdram_softmc::MemoryController;

/// Process-wide intra-module worker count (the `--intra-jobs` flag),
/// inherited by every controller built through this module.
static INTRA_JOBS: AtomicUsize = AtomicUsize::new(1);

/// Sets the intra-module worker count every subsequently built
/// controller inherits. Composes with the fleet's `--jobs`: the fleet
/// parallelizes across tasks, this parallelizes across the chips of
/// each task's module. Output stays byte-identical for any value.
pub fn set_intra_jobs(jobs: usize) {
    INTRA_JOBS.store(jobs.max(1), Ordering::Relaxed);
}

/// The current process-wide intra-module worker count.
pub fn intra_jobs() -> usize {
    INTRA_JOBS.load(Ordering::Relaxed)
}

/// Process-wide cross-bank scheduling switch (the `--sched` flag),
/// inherited by every controller built through this module.
static SCHED: AtomicBool = AtomicBool::new(true);

/// Enables or disables cross-bank batch scheduling on every
/// subsequently built controller. Scheduling is pure accounting on top
/// of the sequential-equivalent execution order, so output stays
/// byte-identical either way; only the `sched_*` perf counters move.
pub fn set_sched(enabled: bool) {
    SCHED.store(enabled, Ordering::Relaxed);
}

/// The current process-wide cross-bank scheduling switch.
pub fn sched() -> bool {
    SCHED.load(Ordering::Relaxed)
}

thread_local! {
    /// Per-worker materialize-cache pool. `None` (the default) disables
    /// pooling entirely; fleet workers arm it for the span of their task
    /// loop. Holds the caches the last reclaimed controller donated, one
    /// per chip.
    static WORKER_CACHES: RefCell<Option<Vec<MaterializeCache>>> = const { RefCell::new(None) };
}

/// Arms this thread's materialize-cache pool: every controller built on
/// this thread adopts the caches of the previously [`reclaim_caches`]'d
/// one. Fleet workers call this at the top of their task loop. Sharing
/// cannot change simulated values — buffers survive adoption only for
/// the same die seed, and they are pure functions of that seed — so any
/// mix of armed and unarmed threads stays byte-identical; only wall
/// time and the `cache_share_hits` counter move.
pub fn arm_cache_pool() {
    WORKER_CACHES.with(|c| *c.borrow_mut() = Some(Vec::new()));
}

/// Disarms this thread's cache pool and drops any pooled caches.
pub fn disarm_cache_pool() {
    WORKER_CACHES.with(|c| *c.borrow_mut() = None);
}

/// Donates a finished task's caches to this thread's pool (no-op while
/// the pool is unarmed). Fleet task bodies call this on their
/// controller right before returning.
pub fn reclaim_caches(mc: &mut MemoryController) {
    WORKER_CACHES.with(|c| {
        if let Some(pool) = c.borrow_mut().as_mut() {
            *pool = mc.module_mut().take_caches();
        }
    });
}

/// Installs this thread's pooled caches into a freshly built controller
/// (no-op while the pool is unarmed or empty).
fn adopt_pooled_caches(mc: &mut MemoryController) {
    WORKER_CACHES.with(|c| {
        if let Some(pool) = c.borrow_mut().as_mut() {
            if !pool.is_empty() {
                mc.module_mut().install_caches(std::mem::take(pool));
            }
        }
    });
}

/// The default geometry for compute experiments: small enough for quick
/// sweeps, wide enough for smooth per-column statistics.
pub fn compute_geometry() -> Geometry {
    Geometry {
        banks: 2,
        subarrays_per_bank: 4,
        rows_per_subarray: 32,
        columns: 512,
    }
}

/// The geometry for PUF experiments: one module row is `chips × columns`
/// bits (the paper's 8 KB row corresponds to 8 chips × 8192 columns —
/// pass `--cols 8192 --chips 8` for paper scale).
pub fn puf_geometry(columns: usize) -> Geometry {
    Geometry {
        banks: 4,
        subarrays_per_bank: 2,
        rows_per_subarray: 32,
        columns,
    }
}

/// A single-chip module of `group` under test, with a distinct die seed.
pub fn controller(group: GroupId, geometry: Geometry, seed: u64) -> MemoryController {
    // Mix the group into the seed so "module 0 of group A" and "module 0
    // of group B" are distinct dies.
    let die = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(group as u64 + 1);
    let mut mc =
        MemoryController::new(Module::new(ModuleConfig::single_chip(group, die, geometry)));
    mc.set_intra_jobs(intra_jobs());
    mc.set_sched(sched());
    adopt_pooled_caches(&mut mc);
    mc
}

/// A module of `group` with an explicit chip count (1 reproduces
/// [`controller`]; 8 is a realistic rank) — the PUF experiments'
/// `--chips` flag, and the shape `--intra-jobs` parallelizes over.
pub fn chips_controller(
    group: GroupId,
    geometry: Geometry,
    seed: u64,
    chips: usize,
) -> MemoryController {
    let die = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(group as u64 + 1);
    let mut mc = MemoryController::new(Module::new(ModuleConfig {
        group,
        seed: die,
        geometry,
        chips,
        params: DeviceParams::default(),
    }));
    mc.set_intra_jobs(intra_jobs());
    mc.set_sched(sched());
    adopt_pooled_caches(&mut mc);
    mc
}

/// A multi-chip (rank) module — used by the PUF experiments when paper
/// scale is requested.
pub fn rank_controller(group: GroupId, geometry: Geometry, seed: u64) -> MemoryController {
    let die = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(group as u64 + 1);
    let mut mc = MemoryController::new(Module::new(ModuleConfig::rank(group, die, geometry)));
    mc.set_intra_jobs(intra_jobs());
    mc.set_sched(sched());
    adopt_pooled_caches(&mut mc);
    mc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controllers_are_distinct_dies() {
        let a = controller(GroupId::B, compute_geometry(), 0);
        let b = controller(GroupId::B, compute_geometry(), 1);
        assert_ne!(
            a.module().chips()[0].silicon().sense_offset(0, 0, 0),
            b.module().chips()[0].silicon().sense_offset(0, 0, 0),
        );
        let c = controller(GroupId::C, compute_geometry(), 0);
        assert_ne!(
            a.module().chips()[0].silicon().sense_offset(0, 0, 0),
            c.module().chips()[0].silicon().sense_offset(0, 0, 0),
        );
    }

    #[test]
    fn pooled_caches_share_across_identical_controllers_only() {
        use fracdram_model::RowAddr;

        arm_cache_pool();
        let geometry = compute_geometry();
        let addr = RowAddr::new(0, 0);
        let bits = vec![true; geometry.columns];

        let mut warm = controller(GroupId::B, geometry, 7);
        warm.write_row(addr, &bits).unwrap();
        let first = warm.read_row(addr).unwrap();
        reclaim_caches(&mut warm);

        // Same (group, seed): the rebuilt controller adopts the donated
        // buffers and reads the same bytes.
        let mut next = controller(GroupId::B, geometry, 7);
        assert!(next.model_perf().cache_share_hits > 0);
        next.write_row(addr, &bits).unwrap();
        assert_eq!(next.read_row(addr).unwrap(), first);
        reclaim_caches(&mut next);

        // Different die seed: adoption must clear the buffers instead of
        // crediting stale ones.
        let other = controller(GroupId::B, geometry, 8);
        assert_eq!(other.model_perf().cache_share_hits, 0);

        disarm_cache_pool();
    }

    #[test]
    fn geometries_have_expected_shape() {
        assert_eq!(compute_geometry().rows_per_subarray, 32);
        assert_eq!(puf_geometry(1024).columns, 1024);
        let r = rank_controller(GroupId::B, puf_geometry(64), 3);
        assert_eq!(r.module().chips().len(), 8);
    }
}
