//! Population-scale streaming study: per-die fingerprint extraction,
//! online accumulators, Frac-PUF uniqueness, and a vendor/origin
//! classifier.
//!
//! Every die is one tiny simulated module ([`fracdram_model::Geometry::tiny`])
//! whose seed derives from its global index ([`crate::fleet::item_seed`]).
//! [`simulate_die`] extracts a 48-byte fingerprint record:
//!
//! - two bank-disjoint Frac-PUF challenges (one 64-bit response each →
//!   a 128-bit fingerprint) on frac-capable groups A–I;
//! - two full-`Vdd` retention probes (fail fraction after 4 h and 12 h,
//!   where the per-group `leak_tau_scale` makes the decay curve a
//!   vendor tell);
//! - four f32 features: PUF Hamming weight, cross-challenge HD, and the
//!   two retention fail fractions.
//!
//! Timing-guarded groups J–L reject fractional commands, so their
//! records carry the two retention read-outs as the fingerprint with
//! [`crate::store::FLAG_PUF_VALID`] cleared — they still classify, but
//! are excluded from PUF uniqueness statistics.
//!
//! The streaming accumulator ([`PopAccum`]) is O(1) in the die count:
//! per-group Welford moments, one fixed-bin histogram, a seed-keyed
//! reservoir of fingerprints, and integer counters. Chunk accumulators
//! merge in ascending chunk order (see [`crate::fleet::run_stream`]),
//! so every aggregate is byte-identical at any `--jobs N`.

use fracdram::puf::{evaluate_set, Challenge};
use fracdram_model::{GroupId, ModelPerf, RowAddr, Seconds};
use fracdram_softmc::{CycleStats, RunMetrics};
use fracdram_stats::bits::BitVec;
use fracdram_stats::rng::mix;
use fracdram_stats::stream::{FixedHistogram, Moments, Reservoir};

use crate::store::{DieRecord, FLAG_PUF_VALID};

/// Number of vendor groups (A–L).
pub const GROUPS: usize = 12;

/// Feature vector labels, in record order.
pub const FEATURES: [&str; 4] = ["puf-hw", "cross-hd", "fail@4h", "fail@12h"];

/// Fingerprint width in bits.
pub const FINGERPRINT_BITS: u32 = 128;

/// The group a die index is simulated as: round-robin over A–L, so
/// every chunk holds every group and per-group counts differ by at
/// most one across the population.
pub fn group_of(index: u64) -> GroupId {
    GroupId::ALL[(index % GROUPS as u64) as usize]
}

/// Deterministic train/test split for the classifier: a pure function
/// of `(base_seed, index)`, independent of chunking and job count.
/// Roughly half the dies train the centroids; the rest are scored.
pub fn is_train(base_seed: u64, index: u64) -> bool {
    mix(base_seed, &[0x7261_494E, index]) & 1 == 0
}

fn pack_bitvec(bits: &BitVec, out: &mut [u8]) {
    for (i, bit) in bits.iter().enumerate().take(out.len() * 8) {
        if bit {
            out[i / 8] |= 1 << (i % 8);
        }
    }
}

fn pack_bools(bits: &[bool], out: &mut [u8]) {
    for (i, &bit) in bits.iter().enumerate().take(out.len() * 8) {
        if bit {
            out[i / 8] |= 1 << (i % 8);
        }
    }
}

fn mismatch_fraction(read: &[bool], wrote: &[bool]) -> f32 {
    let fails = read.iter().zip(wrote).filter(|(r, w)| r != w).count();
    fails as f32 / wrote.len().max(1) as f32
}

/// Normalized Hamming distance between two 128-bit fingerprints.
pub fn fingerprint_hd(a: &[u8; 16], b: &[u8; 16]) -> f64 {
    let differing: u32 = a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum();
    f64::from(differing) / f64::from(FINGERPRINT_BITS)
}

/// Simulates one die and extracts its fingerprint record.
///
/// The die body rides the fleet fast paths: the controller adopts any
/// pooled [`fracdram_model::MaterializeCache`] buffers, the PUF pair
/// goes through the batch scheduler ([`evaluate_set`]), and the two
/// retention waits are closed-form leakage evaluations, not stepped
/// time.
///
/// # Panics
///
/// Panics on controller errors (surfaces as a chunk failure in the
/// stream).
pub fn simulate_die(group: GroupId, die_seed: u64) -> (DieRecord, RunMetrics) {
    let geometry = fracdram_model::Geometry::tiny();
    let mut mc = crate::setup::controller(group, geometry, die_seed);
    let mut features = [0f32; 4];
    let mut fingerprint = [0u8; 16];
    let mut flags = 0u8;

    if group.profile().supports_frac() {
        // Bank-disjoint challenge pair: the cross-bank scheduler merges
        // the two programs, and the two 64-bit responses concatenate
        // into the 128-bit fingerprint.
        let challenges = [Challenge::new(0, 10), Challenge::new(1, 33)];
        let responses = evaluate_set(&mut mc, &challenges).expect("frac-capable PUF");
        pack_bitvec(&responses[0], &mut fingerprint[0..8]);
        pack_bitvec(&responses[1], &mut fingerprint[8..16]);
        features[0] =
            ((responses[0].hamming_weight() + responses[1].hamming_weight()) / 2.0) as f32;
        features[1] =
            fracdram_stats::hamming::normalized_distance(&responses[0], &responses[1]) as f32;
        flags = FLAG_PUF_VALID;
    }

    // Retention probes: full Vdd, closed-form decay, read-out. The 4 h /
    // 12 h delays straddle the per-group tau medians, so the fail
    // fractions spread the groups apart.
    let row = RowAddr::new(0, 50);
    let pattern = fracdram::frac::physical_pattern(&mut mc, row, true);
    mc.write_row(row, &pattern).expect("retention write");
    mc.wait_seconds(Seconds::from_hours(4.0));
    let read4 = mc.read_row(row).expect("retention read @4h");
    features[2] = mismatch_fraction(&read4, &pattern);
    mc.write_row(row, &pattern).expect("retention rewrite");
    mc.wait_seconds(Seconds::from_hours(12.0));
    let read12 = mc.read_row(row).expect("retention read @12h");
    features[3] = mismatch_fraction(&read12, &pattern);

    if flags & FLAG_PUF_VALID == 0 {
        // Guarded groups: the two retention read-outs are still a
        // die-specific pattern, so store them as the fingerprint.
        pack_bools(&read4, &mut fingerprint[0..8]);
        pack_bools(&read12, &mut fingerprint[8..16]);
    }

    let metrics = mc.metrics();
    crate::setup::reclaim_caches(&mut mc);
    (
        DieRecord {
            seed: die_seed,
            group,
            flags,
            features,
            fingerprint,
        },
        metrics,
    )
}

/// Per-group streaming state: die count and per-feature moments, plus
/// the train-split moments the classifier centroids come from.
#[derive(Debug, Clone)]
pub struct GroupAccum {
    /// Dies of this group seen so far.
    pub count: u64,
    /// Moments of each feature over all dies of the group.
    pub features: [Moments; 4],
    /// Moments of each feature over the train split only.
    pub train: [Moments; 4],
}

impl GroupAccum {
    fn new() -> Self {
        GroupAccum {
            count: 0,
            features: [Moments::new(); 4],
            train: [Moments::new(); 4],
        }
    }

    fn merge(&mut self, other: &GroupAccum) {
        self.count += other.count;
        for i in 0..4 {
            self.features[i].merge(&other.features[i]);
            self.train[i].merge(&other.train[i]);
        }
    }
}

/// The streaming population accumulator — everything the aggregate
/// report needs, in O(1) memory: no per-die state except the bounded
/// `records` buffer the reducer drains into the store after every
/// chunk merge.
#[derive(Debug, Clone)]
pub struct PopAccum {
    /// Dies folded so far.
    pub dies: u64,
    /// Dies with a valid Frac-PUF fingerprint.
    pub puf_valid: u64,
    /// Train-split dies.
    pub train_dies: u64,
    /// Per-group accumulators, indexed like [`GroupId::ALL`].
    pub groups: Vec<GroupAccum>,
    /// Global per-feature moments (the classifier's z-scale).
    pub global: [Moments; 4],
    /// Histogram of PUF Hamming weight over frac-capable dies.
    pub hw_hist: FixedHistogram,
    /// Seed-keyed reservoir of PUF fingerprints (frac-capable dies).
    pub reservoir: Reservoir<[u8; 16]>,
    /// Aggregated controller command counters.
    pub stats: CycleStats,
    /// Aggregated kernel performance counters.
    pub perf: ModelPerf,
    /// Records pending a store write — filled by the chunk fold,
    /// drained (in chunk order) by the reducer. Never grows past one
    /// chunk per pending accumulator.
    pub records: Vec<DieRecord>,
}

impl PopAccum {
    /// An empty accumulator for a run with the given base seed and
    /// reservoir capacity.
    pub fn new(base_seed: u64, sample: usize) -> Self {
        PopAccum {
            dies: 0,
            puf_valid: 0,
            train_dies: 0,
            groups: (0..GROUPS).map(|_| GroupAccum::new()).collect(),
            global: [Moments::new(); 4],
            hw_hist: FixedHistogram::new(0.0, 1.0, 20),
            reservoir: Reservoir::new(base_seed, sample),
            stats: CycleStats::default(),
            perf: ModelPerf::default(),
            records: Vec::new(),
        }
    }

    /// Folds one die into the accumulator. `base_seed` keys the
    /// train/test split; `index` is the die's global index.
    pub fn push(&mut self, base_seed: u64, index: u64, record: &DieRecord) {
        self.dies += 1;
        let train = is_train(base_seed, index);
        if train {
            self.train_dies += 1;
        }
        let group = &mut self.groups[record.group as usize];
        group.count += 1;
        for (i, &f) in record.features.iter().enumerate() {
            let f = f64::from(f);
            group.features[i].push(f);
            self.global[i].push(f);
            if train {
                group.train[i].push(f);
            }
        }
        if record.puf_valid() {
            self.puf_valid += 1;
            self.hw_hist.record(f64::from(record.features[0]));
            self.reservoir.offer(index, record.fingerprint);
        }
        self.records.push(*record);
    }

    /// Merges another chunk's accumulator (everything except
    /// `records`, which the reducer drains into the store itself).
    pub fn merge(&mut self, other: &PopAccum) {
        self.dies += other.dies;
        self.puf_valid += other.puf_valid;
        self.train_dies += other.train_dies;
        for (a, b) in self.groups.iter_mut().zip(&other.groups) {
            a.merge(b);
        }
        for i in 0..4 {
            self.global[i].merge(&other.global[i]);
        }
        self.hw_hist.merge(&other.hw_hist);
        self.reservoir.merge(other.reservoir.clone());
        self.stats.accumulate(&other.stats);
        self.perf.accumulate(&other.perf);
    }
}

/// Nearest-centroid classifier state: per-group feature means from the
/// train split, z-scaled by the global per-feature spread.
#[derive(Debug, Clone)]
pub struct Centroids {
    /// Per-group centroid in feature space ([`GroupId::ALL`] order).
    pub mean: [[f64; 4]; GROUPS],
    /// Per-feature scale (global std, floored to avoid division by a
    /// degenerate spread).
    pub scale: [f64; 4],
    /// Whether the group had any train dies (untrained groups never
    /// win).
    pub trained: [bool; GROUPS],
}

impl Centroids {
    /// Builds the classifier from a finished population accumulator.
    pub fn from_accum(acc: &PopAccum) -> Self {
        let mut mean = [[0.0; 4]; GROUPS];
        let mut trained = [false; GROUPS];
        for (g, group) in acc.groups.iter().enumerate() {
            trained[g] = group.train[0].count() > 0;
            for (m, t) in mean[g].iter_mut().zip(&group.train) {
                *m = t.mean();
            }
        }
        let mut scale = [0.0; 4];
        for (s, global) in scale.iter_mut().zip(&acc.global) {
            *s = global.std_dev().max(1e-9);
        }
        Centroids {
            mean,
            scale,
            trained,
        }
    }

    /// Classifies a feature vector: index (into [`GroupId::ALL`]) of
    /// the nearest trained centroid in z-scaled Euclidean distance,
    /// ties broken toward the lower group index.
    pub fn classify(&self, features: &[f32; 4]) -> usize {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for g in 0..GROUPS {
            if !self.trained[g] {
                continue;
            }
            let mut d = 0.0;
            for ((&f, m), s) in features.iter().zip(&self.mean[g]).zip(&self.scale) {
                let z = (f64::from(f) - m) / s;
                d += z * z;
            }
            if d < best_d {
                best_d = d;
                best = g;
            }
        }
        best
    }
}

/// A confusion matrix over the 12 groups (rows = true, cols =
/// predicted) accumulated over the test split.
#[derive(Debug, Clone, Default)]
pub struct Confusion {
    /// counts[true][predicted].
    pub counts: [[u64; GROUPS]; GROUPS],
}

impl Confusion {
    /// Records one classified test die.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        self.counts[truth][predicted] += 1;
    }

    /// Total test dies recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Correctly classified dies.
    pub fn correct(&self) -> u64 {
        (0..GROUPS).map(|g| self.counts[g][g]).sum()
    }

    /// Overall accuracy (0 when empty).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.correct() as f64 / total as f64
        }
    }

    /// Accuracy restricted to a subset of true groups.
    pub fn accuracy_over(&self, groups: impl Iterator<Item = usize>) -> f64 {
        let mut total = 0u64;
        let mut correct = 0u64;
        for g in groups {
            total += self.counts[g].iter().sum::<u64>();
            correct += self.counts[g][g];
        }
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

/// Pairwise uniqueness statistics over the sampled fingerprints.
#[derive(Debug, Clone, Copy)]
pub struct Uniqueness {
    /// Fingerprints sampled.
    pub sampled: usize,
    /// Pairs compared (`sampled·(sampled−1)/2`).
    pub pairs: u64,
    /// Mean pairwise normalized inter-HD (ideal 0.5).
    pub mean_hd: f64,
    /// Standard deviation of the pairwise inter-HD.
    pub std_hd: f64,
    /// Smallest pairwise inter-HD observed in the sample.
    pub min_hd: f64,
    /// Largest pairwise inter-HD observed in the sample.
    pub max_hd: f64,
    /// Estimated probability two random dies produce the *same*
    /// 128-bit fingerprint: mean over sampled pairs of
    /// `(1 − d)^128` under an independent-bit model.
    pub p_match: f64,
}

/// Computes pairwise uniqueness over a reservoir's fingerprints.
/// Returns `None` below two samples.
pub fn uniqueness(reservoir: &Reservoir<[u8; 16]>) -> Option<Uniqueness> {
    let prints: Vec<&[u8; 16]> = reservoir.items().map(|(_, fp)| fp).collect();
    if prints.len() < 2 {
        return None;
    }
    let mut hd = Moments::new();
    let mut min_hd = 1.0f64;
    let mut max_hd = 0.0f64;
    let mut p_match = Moments::new();
    for i in 0..prints.len() {
        for j in i + 1..prints.len() {
            let d = fingerprint_hd(prints[i], prints[j]);
            hd.push(d);
            min_hd = min_hd.min(d);
            max_hd = max_hd.max(d);
            p_match.push((1.0 - d).powi(FINGERPRINT_BITS as i32));
        }
    }
    Some(Uniqueness {
        sampled: prints.len(),
        pairs: hd.count(),
        mean_hd: hd.mean(),
        std_hd: hd.std_dev(),
        min_hd,
        max_hd,
        p_match: p_match.mean(),
    })
}

/// Birthday-bound collision probability for a population of `n`
/// enrolled dies with per-pair match probability `p_match`:
/// `1 − exp(−n(n−1)/2 · p)`.
pub fn collision_probability(n: u64, p_match: f64) -> f64 {
    let pairs = n as f64 * (n as f64 - 1.0) / 2.0;
    -(-pairs * p_match).exp_m1()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_assignment_is_round_robin() {
        assert_eq!(group_of(0), GroupId::A);
        assert_eq!(group_of(11), GroupId::L);
        assert_eq!(group_of(12), GroupId::A);
    }

    #[test]
    fn train_split_is_index_pure_and_roughly_even() {
        let train = (0..1000).filter(|&i| is_train(5, i)).count();
        assert!((400..600).contains(&train), "train split {train}/1000");
        assert_eq!(is_train(5, 17), is_train(5, 17));
        // Different base seeds draw different splits.
        assert!((0..1000).any(|i| is_train(5, i) != is_train(6, i)));
    }

    #[test]
    fn simulated_die_is_seed_deterministic_and_group_flagged() {
        let (a, _) = simulate_die(GroupId::B, 77);
        let (b, _) = simulate_die(GroupId::B, 77);
        assert_eq!(a, b, "same (group, seed) must reproduce the record");
        assert!(a.puf_valid());
        assert!(a.features[0] > 0.0 && a.features[0] < 1.0);
        let (c, _) = simulate_die(GroupId::B, 78);
        assert_ne!(a.fingerprint, c.fingerprint, "different dies differ");
        // Timing-guarded group: no PUF, retention fingerprint instead.
        let (guarded, _) = simulate_die(GroupId::K, 77);
        assert!(!guarded.puf_valid());
        assert_eq!(guarded.features[0], 0.0);
        assert_eq!(guarded.features[1], 0.0);
    }

    #[test]
    fn retention_features_spread_with_delay() {
        let (r, _) = simulate_die(GroupId::A, 3);
        assert!(
            r.features[3] >= r.features[2],
            "12h fails {} must be >= 4h fails {}",
            r.features[3],
            r.features[2]
        );
        assert!(r.features[3] > 0.0, "12h probe must see some decay");
    }

    #[test]
    fn accum_chunked_merge_matches_sequential_fold() {
        // Pure-accumulator property (no simulation): folding synthetic
        // records in two chunks and merging equals one sequential fold,
        // bit for bit.
        let record = |i: u64| DieRecord {
            seed: i,
            group: group_of(i),
            flags: u8::from(i % 12 < 9),
            features: [
                (i % 7) as f32 / 7.0,
                (i % 5) as f32 / 5.0,
                (i % 3) as f32 / 3.0,
                (i % 11) as f32 / 11.0,
            ],
            fingerprint: [(i % 251) as u8; 16],
        };
        let mut sequential = PopAccum::new(9, 8);
        for i in 0..100 {
            sequential.push(9, i, &record(i));
        }
        let mut left = PopAccum::new(9, 8);
        for i in 0..37 {
            left.push(9, i, &record(i));
        }
        let mut right = PopAccum::new(9, 8);
        for i in 37..100 {
            right.push(9, i, &record(i));
        }
        left.merge(&right);
        assert_eq!(left.dies, sequential.dies);
        assert_eq!(left.puf_valid, sequential.puf_valid);
        assert_eq!(left.train_dies, sequential.train_dies);
        // Integer-state aggregates are exact under any grouping.
        assert_eq!(left.hw_hist, sequential.hw_hist);
        assert_eq!(left.reservoir, sequential.reservoir);
        // Float moments: a chunked merge is a *different* expression
        // tree than a sequential fold, so equality here is only
        // within tolerance — which is exactly why the fleet fixes the
        // chunk structure and merge order: the SAME tree is
        // bit-identical, asserted below.
        for i in 0..4 {
            let (a, b) = (left.global[i].mean(), sequential.global[i].mean());
            assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0), "{a} vs {b}");
            let (a, b) = (left.global[i].variance(), sequential.global[i].variance());
            assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0), "{a} vs {b}");
        }
        // Re-fold with the identical chunk structure: bit-identical.
        let mut left2 = PopAccum::new(9, 8);
        for i in 0..37 {
            left2.push(9, i, &record(i));
        }
        let mut right2 = PopAccum::new(9, 8);
        for i in 37..100 {
            right2.push(9, i, &record(i));
        }
        left2.merge(&right2);
        for i in 0..4 {
            assert_eq!(
                left.global[i].mean().to_bits(),
                left2.global[i].mean().to_bits(),
                "identical chunk structure must merge bit-identically"
            );
            assert_eq!(
                left.global[i].variance().to_bits(),
                left2.global[i].variance().to_bits()
            );
        }
    }

    #[test]
    fn classifier_separates_synthetic_clusters() {
        let mut acc = PopAccum::new(1, 8);
        // Two synthetic groups with well-separated features.
        for i in 0..200u64 {
            let group = if i % 2 == 0 { GroupId::A } else { GroupId::B };
            let base = if i % 2 == 0 { 0.2f32 } else { 0.8f32 };
            let jitter = (i % 13) as f32 / 130.0;
            let record = DieRecord {
                seed: i,
                group,
                flags: FLAG_PUF_VALID,
                features: [base + jitter, base, base - jitter.min(base), base],
                fingerprint: [0; 16],
            };
            acc.push(1, i, &record);
        }
        let centroids = Centroids::from_accum(&acc);
        assert_eq!(centroids.classify(&[0.2, 0.2, 0.2, 0.2]), 0);
        assert_eq!(centroids.classify(&[0.8, 0.8, 0.8, 0.8]), 1);
    }

    #[test]
    fn confusion_matrix_counts_and_accuracy() {
        let mut c = Confusion::default();
        c.record(0, 0);
        c.record(0, 0);
        c.record(0, 1);
        c.record(9, 9);
        assert_eq!(c.total(), 4);
        assert_eq!(c.correct(), 3);
        assert!((c.accuracy() - 0.75).abs() < 1e-12);
        assert!((c.accuracy_over([0usize].into_iter()) - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.accuracy_over([9usize].into_iter()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniqueness_and_birthday_bound() {
        let mut reservoir = Reservoir::new(3, 16);
        // Random-ish distinct fingerprints.
        for i in 0..16u64 {
            let mut fp = [0u8; 16];
            for (b, byte) in fp.iter_mut().enumerate() {
                *byte = mix(99, &[i, b as u64]) as u8;
            }
            reservoir.offer(i, fp);
        }
        let u = uniqueness(&reservoir).unwrap();
        assert_eq!(u.sampled, 16);
        assert_eq!(u.pairs, 120);
        assert!((u.mean_hd - 0.5).abs() < 0.1, "mean HD {}", u.mean_hd);
        assert!(u.min_hd > 0.2 && u.max_hd < 0.8);
        assert!(u.p_match < 1e-20, "random 128-bit prints never match");
        // Birthday bound sanity: monotone in n, ~0 for tiny p, ~1 when
        // pairs * p is large.
        assert_eq!(collision_probability(1, 0.5), 0.0);
        assert!(collision_probability(1_000_000, u.p_match) < 1e-6);
        assert!(collision_probability(10, 0.9) > 0.99);
        assert!(collision_probability(1000, 1e-5) > collision_probability(100, 1e-5));
    }

    #[test]
    fn fingerprint_hd_counts_bits() {
        let a = [0u8; 16];
        let mut b = [0u8; 16];
        b[0] = 0b1111;
        assert_eq!(fingerprint_hd(&a, &a), 0.0);
        assert!((fingerprint_hd(&a, &b) - 4.0 / 128.0).abs() < 1e-12);
        let c = [0xFFu8; 16];
        assert_eq!(fingerprint_hd(&a, &c), 1.0);
    }
}
