//! Golden-output regression test for the PUF figure: fig11's stdout
//! must match the checked-in snapshot.
//!
//! fig11 exercises every controller fast path — cached compiled
//! programs, the write-prefix snapshot restore (each challenge row is
//! re-written per evaluation), and the counter-keyed noise engine whose
//! draws must be identical whether a write is replayed or restored — so
//! any deviation from the replay-everything semantics shows up as a
//! diff here.
//!
//! Regenerate (only for an intentional, understood behavior change):
//!
//! ```text
//! cargo build --release -p fracdram-experiments
//! cargo run --release -p fracdram-experiments --bin regen-goldens
//! ```

use std::process::Command;

#[test]
fn fig11_puf_slice_matches_pre_cache_snapshot() {
    let expected = include_str!("golden/fig11_small.txt");
    let output = Command::new(env!("CARGO_BIN_EXE_fig11_puf_hd"))
        .args(["--challenges", "8", "--jobs", "1"])
        .output()
        .expect("fig11_puf_hd binary runs");
    assert!(
        output.status.success(),
        "fig11_puf_hd failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("utf-8 stdout");
    assert_eq!(
        stdout, expected,
        "fig11 stdout drifted from the pre-cache golden snapshot"
    );
}
