//! Integration test for the experiment fleet: the merged results of a
//! real measurement sweep must be bit-identical at any worker count.

use fracdram::fmaj::FmajConfig;
use fracdram::rowsets::Quad;
use fracdram_experiments::{fleet, setup, task_seed, tasks, TaskKey};
use fracdram_model::{GroupId, SubarrayAddr};
use fracdram_stats::rng::Rng;

/// The fig10-style measurement body used by the determinism checks.
fn stability_task(
    key: &TaskKey,
    seed: u64,
    trials: usize,
) -> (Vec<f64>, fracdram_softmc::RunMetrics) {
    let mut mc = setup::controller(key.group, setup::compute_geometry(), 77 + key.module as u64);
    let geometry = *mc.module().geometry();
    let sa = SubarrayAddr::new(key.subarray % geometry.banks, key.subarray / geometry.banks);
    let quad = Quad::canonical(&geometry, sa, key.group).expect("quad");
    let config = FmajConfig::best_for(key.group);
    let mut rng = Rng::seed_from_u64(seed);
    let value = tasks::stability_fmaj(&mut mc, &quad, &config, trials, &mut rng);
    (value, mc.metrics())
}

fn plan() -> Vec<TaskKey> {
    let mut plan = Vec::new();
    for group in [GroupId::B, GroupId::C] {
        for module in 0..2 {
            for subarray in 0..2 {
                plan.push(TaskKey::new(group, module, subarray));
            }
        }
    }
    plan
}

#[test]
fn real_measurement_identical_at_jobs_1_and_8() {
    let plan = plan();
    let trials = 3;
    let task = |key: &TaskKey, seed: u64| stability_task(key, seed, trials);
    let serial = fleet::run(&plan, 99, 1, task);
    let parallel = fleet::run(&plan, 99, 8, task);

    assert_eq!(serial.tasks.len(), parallel.tasks.len());
    for (a, b) in serial.tasks.iter().zip(&parallel.tasks) {
        assert_eq!(a.key, b.key, "merge order must match the plan");
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.value(), b.value(), "payload differs at {:?}", a.key);
    }
    assert_eq!(
        serial.total_stats().commands,
        parallel.total_stats().commands,
        "aggregated DRAM command counts must match"
    );
}

#[test]
fn task_seeds_depend_only_on_base_seed_and_key() {
    let plan = plan();
    let run = fleet::run(&plan, 5, 4, |key, seed| {
        assert_eq!(seed, task_seed(5, key));
        ((), fracdram_softmc::RunMetrics::default())
    });
    assert_eq!(run.tasks.len(), plan.len());
    // Re-running with the same base seed reproduces every seed; a
    // different base seed changes all of them.
    for key in &plan {
        assert_eq!(task_seed(5, key), task_seed(5, key));
        assert_ne!(task_seed(5, key), task_seed(6, key));
    }
}
