//! Golden-output regression test: the rendered stdout of a small
//! experiment must match a checked-in snapshot captured **before** the
//! column-kernel rewrite of the sub-array engine.
//!
//! The jobs-1-vs-8 determinism test proves the output is stable across
//! thread counts; this test pins it across *code revisions*. The
//! snapshot (`tests/golden/table1_small.txt`) was recorded from the
//! pre-rewrite scalar kernels — and survived the counter-keyed noise
//! rewrite byte-for-byte, because table1 only probes digital capability
//! outcomes — so any drift in simulated values (an FP reassociation, a
//! changed noise keying, a stale cache) shows up as a diff here.
//!
//! Regenerate (only for an intentional, understood behavior change):
//!
//! ```text
//! cargo build --release -p fracdram-experiments
//! cargo run --release -p fracdram-experiments --bin regen-goldens
//! ```

use std::process::Command;

#[test]
fn table1_two_module_slice_matches_pre_rewrite_snapshot() {
    let expected = include_str!("golden/table1_small.txt");
    let output = Command::new(env!("CARGO_BIN_EXE_table1"))
        .args(["--modules", "2", "--jobs", "1"])
        .output()
        .expect("table1 binary runs");
    assert!(
        output.status.success(),
        "table1 failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("utf-8 stdout");
    assert_eq!(
        stdout, expected,
        "table1 stdout drifted from the pre-rewrite golden snapshot"
    );
}
