//! Integration tests for the `population` streaming binary: the whole
//! aggregate report must be byte-identical at any `--jobs N`, the
//! binary store must carry the same digest either way, `--replay` must
//! reproduce the report without re-simulating, and a malformed scale
//! suffix must exit with status 2 (the in-process unit tests in
//! `cli.rs` cannot observe `std::process::exit`).

use std::path::PathBuf;
use std::process::{Command, Output};

fn scratch(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("fracdram_poptest_{}_{name}", std::process::id()));
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_population"))
        .args(args)
        .output()
        .expect("spawn population")
}

fn run_ok(args: &[&str]) -> Output {
    let out = run(args);
    assert!(
        out.status.success(),
        "population {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// One small real population, simulated twice (jobs 1 vs 8) and then
/// replayed from the store — all three stdouts must be byte-identical,
/// and both stores must hash to the same digest.
#[test]
fn aggregate_report_is_byte_identical_across_jobs_and_replay() {
    let store1 = scratch("jobs1.bin");
    let store8 = scratch("jobs8.bin");
    let dies = "1920";
    let chunk = "240";

    let serial = run_ok(&[
        "--dies",
        dies,
        "--chunk",
        chunk,
        "--jobs",
        "1",
        "--store",
        store1.to_str().unwrap(),
    ]);
    let parallel = run_ok(&[
        "--dies",
        dies,
        "--chunk",
        chunk,
        "--jobs",
        "8",
        "--store",
        store8.to_str().unwrap(),
    ]);
    assert_eq!(
        String::from_utf8_lossy(&serial.stdout),
        String::from_utf8_lossy(&parallel.stdout),
        "aggregate stdout must not depend on --jobs"
    );

    // Same records in the same order: the store files are identical.
    let bytes1 = std::fs::read(&store1).expect("read store");
    let bytes8 = std::fs::read(&store8).expect("read store");
    assert_eq!(bytes1, bytes8, "store bytes must not depend on --jobs");

    // Replay folds the store with the run's own chunk structure, so
    // the report (which includes the digest line) comes out identical
    // without a single simulated die.
    let replay = run_ok(&["--replay", store1.to_str().unwrap()]);
    assert_eq!(
        String::from_utf8_lossy(&serial.stdout),
        String::from_utf8_lossy(&replay.stdout),
        "--replay must reproduce the simulated report"
    );
    let err = String::from_utf8_lossy(&replay.stderr);
    assert!(
        err.contains("replayed 1920 record(s)"),
        "replay notes the record count on stderr: {err}"
    );
    assert!(
        err.contains("0 DRAM commands"),
        "replay must not simulate: {err}"
    );

    std::fs::remove_file(&store1).ok();
    std::fs::remove_file(&store8).ok();
}

/// A ragged tail (dies not a multiple of chunk) still streams, replays,
/// and reports the full die count.
#[test]
fn ragged_tail_population_replays() {
    let store = scratch("ragged.bin");
    let simulated = run_ok(&[
        "--dies",
        "130",
        "--chunk",
        "48",
        "--jobs",
        "3",
        "--store",
        store.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&simulated.stdout);
    assert!(stdout.contains("store: 130 record(s)"), "{stdout}");
    let replay = run_ok(&["--replay", store.to_str().unwrap()]);
    assert_eq!(simulated.stdout, replay.stdout);
    std::fs::remove_file(&store).ok();
}

/// `--dies 1k` parses through the scale-suffix path end to end.
#[test]
fn scale_suffix_accepted_by_real_binary() {
    let out = run_ok(&["--dies", "1k", "--chunk", "500", "--jobs", "2"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("dies 1000  chunk 500"), "{stdout}");
}

/// A malformed count must exit with status 2 and a named error — not a
/// panic backtrace, and never a silent run of the default config.
#[test]
fn malformed_scale_suffix_exits_2() {
    for bad in ["4x4", "2T", "1.5M", "k"] {
        let out = run(&["--dies", bad]);
        assert_eq!(
            out.status.code(),
            Some(2),
            "--dies {bad} must exit 2, got {:?}",
            out.status
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("--dies expects an integer"),
            "--dies {bad} stderr: {err}"
        );
        assert!(!err.contains("panicked"), "--dies {bad} stderr: {err}");
    }
}

/// Unknown arguments still exit 2 with the usage banner (the typo gate
/// every fleet binary shares).
#[test]
fn unknown_argument_exits_2() {
    let out = run(&["--dyes", "100"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown argument --dyes"), "{err}");
}
