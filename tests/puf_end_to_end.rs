//! End-to-end Frac-PUF tests: enrollment, authentication, environmental
//! robustness, uniqueness, and randomness of the whitened output.

use fracdram::puf::{authenticate, challenge_set, evaluate, whitened_stream, Challenge, EvalCost};
use fracdram_model::{Environment, Geometry, GroupId, Module, ModuleConfig, Volts};
use fracdram_softmc::MemoryController;
use fracdram_stats::bits::BitVec;
use fracdram_stats::hamming::normalized_distance;
use fracdram_stats::nist;

fn geometry() -> Geometry {
    Geometry {
        banks: 4,
        subarrays_per_bank: 2,
        rows_per_subarray: 32,
        columns: 512,
    }
}

fn device(group: GroupId, seed: u64) -> MemoryController {
    MemoryController::new(Module::new(ModuleConfig::single_chip(
        group,
        seed,
        geometry(),
    )))
}

#[test]
fn enrollment_and_authentication_flow() {
    let challenges = challenge_set(&geometry(), 8, 42);
    // Enroll three devices.
    let mut devices: Vec<MemoryController> = (0..3).map(|i| device(GroupId::B, 100 + i)).collect();
    let enrolled: Vec<Vec<BitVec>> = devices
        .iter_mut()
        .map(|d| {
            challenges
                .iter()
                .map(|&c| evaluate(d, c).unwrap())
                .collect()
        })
        .collect();
    // Every device authenticates as itself and as nobody else.
    for (i, d) in devices.iter_mut().enumerate() {
        for (ci, &c) in challenges.iter().enumerate() {
            let fresh = evaluate(d, c).unwrap();
            for (j, enr) in enrolled.iter().enumerate() {
                let accepted = authenticate(&enr[ci], &fresh, 0.15);
                assert_eq!(accepted, i == j, "device {i} vs enrollment {j}");
            }
        }
    }
}

#[test]
fn responses_are_robust_across_voltage_and_temperature() {
    let challenges = challenge_set(&geometry(), 6, 43);
    let mut d = device(GroupId::E, 7);
    let enrolled: Vec<BitVec> = challenges
        .iter()
        .map(|&c| evaluate(&mut d, c).unwrap())
        .collect();
    for env in [
        Environment::nominal().with_vdd(Volts(1.4)),
        Environment::nominal().with_temperature(60.0),
        Environment::nominal()
            .with_vdd(Volts(1.4))
            .with_temperature(40.0),
    ] {
        d.module_mut().set_environment(env);
        for (enr, &c) in enrolled.iter().zip(&challenges) {
            let fresh = evaluate(&mut d, c).unwrap();
            let hd = normalized_distance(enr, &fresh);
            assert!(hd < 0.15, "{env:?}: intra-HD = {hd}");
        }
        d.module_mut().set_environment(Environment::nominal());
    }
}

#[test]
fn different_rows_of_one_subarray_give_distinct_responses() {
    // The challenge space is the full address range: even rows sharing
    // sense amplifiers must answer differently (cell-level entropy).
    let mut d = device(GroupId::B, 9);
    let r1 = evaluate(&mut d, Challenge::new(0, 3)).unwrap();
    let r2 = evaluate(&mut d, Challenge::new(0, 4)).unwrap();
    let hd = normalized_distance(&r1, &r2);
    assert!(hd > 0.1, "same-subarray challenge HD = {hd}");
}

#[test]
fn whitened_output_passes_core_randomness_tests() {
    let mut d = device(GroupId::A, 21);
    let challenges = challenge_set(&geometry(), 64, 44);
    let responses: Vec<BitVec> = challenges
        .iter()
        .map(|&c| evaluate(&mut d, c).unwrap())
        .collect();
    let stream = whitened_stream(&responses);
    assert!(stream.len() > 4_000, "yield too low: {}", stream.len());
    for result in [
        nist::frequency(&stream),
        nist::runs(&stream),
        nist::block_frequency(&stream, 128),
        nist::cumulative_sums(&stream),
        nist::approximate_entropy(&stream, 6),
    ] {
        assert!(result.passed(), "{result}");
    }
}

#[test]
fn eval_cost_reproduces_paper_latencies() {
    let conservative = EvalCost::for_row(65_536, false);
    assert!((conservative.total_micros() - 1.5).abs() < 0.2);
    let optimized = EvalCost::for_row(65_536, true);
    assert!((optimized.total_micros() - 0.7).abs() < 0.25);
    // Smaller responses read proportionally faster.
    assert!(EvalCost::for_row(8_192, false).total() < conservative.total());
}

#[test]
fn responses_differ_between_vendor_groups() {
    let challenges = challenge_set(&geometry(), 4, 45);
    let mut a = device(GroupId::A, 5);
    let mut g = device(GroupId::G, 5);
    for &c in &challenges {
        let ra = evaluate(&mut a, c).unwrap();
        let rg = evaluate(&mut g, c).unwrap();
        assert!(normalized_distance(&ra, &rg) > 0.2);
    }
    // And the group A bias shows up as a low Hamming weight.
    let ra = evaluate(&mut a, challenges[0]).unwrap();
    assert!(
        ra.hamming_weight() < 0.45,
        "group A weight = {}",
        ra.hamming_weight()
    );
}
