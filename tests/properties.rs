//! Property-based tests (proptest) on the core invariants.

use fracdram::frac::{frac_program, FRAC_CYCLES};
use fracdram::maj3::expected_majority;
use fracdram::puf::challenge_set;
use fracdram::retention::{classify_cells, BucketCounts, CellCategory, RetentionBucket};
use fracdram::rowsets::Quad;
use fracdram_model::{Geometry, GroupId, Module, ModuleConfig, RowAddr, SubarrayAddr};
use fracdram_softmc::MemoryController;
use proptest::prelude::*;

fn controller(seed: u64) -> MemoryController {
    MemoryController::new(Module::new(ModuleConfig::single_chip(
        GroupId::B,
        seed,
        Geometry::tiny(),
    )))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DRAM is memory: any pattern written with legal timing reads back
    /// exactly, on any row, repeatedly.
    #[test]
    fn write_read_roundtrip(
        pattern in prop::collection::vec(any::<bool>(), 64),
        bank in 0usize..2,
        row in 0usize..64,
        seed in 0u64..1000,
    ) {
        let mut mc = controller(seed);
        let addr = RowAddr::new(bank, row);
        mc.write_row(addr, &pattern).unwrap();
        prop_assert_eq!(mc.read_row(addr).unwrap(), pattern.clone());
        prop_assert_eq!(mc.read_row(addr).unwrap(), pattern);
    }

    /// The Frac program always costs exactly 7 cycles per operation and
    /// never passes the JEDEC checker.
    #[test]
    fn frac_program_shape(count in 1usize..20, bank in 0usize..2, row in 0usize..64) {
        let p = frac_program(RowAddr::new(bank, row), count);
        prop_assert_eq!(p.total_cycles().value(), FRAC_CYCLES * count as u64);
        let mc = controller(0);
        prop_assert!(!mc.check(&p).is_empty());
    }

    /// Quads built from any valid two-bit-differing pair contain exactly
    /// the XOR-span of the pair, with R1/R2 first.
    #[test]
    fn quad_span_invariants(r1 in 0usize..32, bits in 0usize..10) {
        let geometry = Geometry::tiny();
        // Derive a two-bit difference from the `bits` seed.
        let lo = bits % 5;
        let hi = 1 + lo + bits / 5 % 4;
        prop_assume!(hi <= 4);
        let r2 = r1 ^ (1 << lo) ^ (1 << hi);
        prop_assume!(r2 < 32);
        let quad = Quad::from_pair(&geometry, SubarrayAddr::new(0, 0), r1, r2).unwrap();
        let roles = quad.local_roles();
        prop_assert_eq!(roles[0], r1);
        prop_assert_eq!(roles[1], r2);
        // All four rows agree outside the differing bits and are distinct.
        let diff = r1 ^ r2;
        for &r in &roles {
            prop_assert_eq!(r & !diff, r1 & !diff);
        }
        let mut sorted = roles.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), 4);
    }

    /// Majority is symmetric under operand permutation and monotone.
    #[test]
    fn majority_truth_table_properties(a in any::<bool>(), b in any::<bool>(), c in any::<bool>()) {
        let m = expected_majority([a, b, c]);
        prop_assert_eq!(m, expected_majority([b, c, a]));
        prop_assert_eq!(m, expected_majority([c, a, b]));
        // Flipping a single false->true can only keep or raise majority.
        if !a {
            prop_assert!(expected_majority([true, b, c]) >= m);
        }
    }

    /// Bucket tallies are a partition: counts sum to the input size and
    /// the PDF sums to one.
    #[test]
    fn bucket_counts_partition(ranks in prop::collection::vec(0usize..6, 1..200)) {
        let buckets: Vec<RetentionBucket> =
            ranks.iter().map(|&r| RetentionBucket::ALL[r]).collect();
        let counts = BucketCounts::from_buckets(&buckets);
        prop_assert_eq!(counts.total(), buckets.len());
        let pdf_sum: f64 = counts.pdf().iter().sum();
        prop_assert!((pdf_sum - 1.0).abs() < 1e-9);
    }

    /// Cell classification is exhaustive and consistent: every non-
    /// increasing trajectory is monotonic-or-long, never Other.
    #[test]
    fn classification_consistency(
        start in 0usize..6,
        drops in prop::collection::vec(0usize..2, 5),
    ) {
        let mut rank = start;
        let trajectory: Vec<Vec<RetentionBucket>> = std::iter::once(rank)
            .chain(drops.iter().map(|&d| {
                rank = rank.saturating_sub(d);
                rank
            }))
            .map(|r| vec![RetentionBucket::ALL[r]])
            .collect();
        let category = classify_cells(&trajectory)[0];
        if start == 5 && trajectory.iter().all(|b| b[0] == RetentionBucket::Over12Hours) {
            prop_assert_eq!(category, CellCategory::LongRetention);
        } else {
            prop_assert_eq!(category, CellCategory::MonotonicDecrease);
        }
    }

    /// Challenge sets are always distinct, in range, and reproducible.
    #[test]
    fn challenge_set_properties(n in 1usize..64, seed in any::<u64>()) {
        let geometry = Geometry::tiny();
        let set = challenge_set(&geometry, n, seed);
        prop_assert_eq!(set.len(), n);
        let mut unique = std::collections::HashSet::new();
        for c in &set {
            prop_assert!(c.bank < geometry.banks);
            prop_assert!(c.row < geometry.rows_per_bank());
            prop_assert!(unique.insert((c.bank, c.row)));
        }
        prop_assert_eq!(challenge_set(&geometry, n, seed), set);
    }

    /// A fractional value never escapes the band between its initial
    /// rail and Vdd/2 (clamped by physics, any op count, any init).
    #[test]
    fn fractional_band_invariant(
        count in 1usize..12,
        init in any::<bool>(),
        row in 0usize..32,
        seed in 0u64..100,
    ) {
        let mut mc = controller(seed);
        let addr = RowAddr::new(0, row);
        fracdram::frac::store_fractional(&mut mc, addr, init, count).unwrap();
        let t = mc.clock();
        for col in [0usize, 13, 40] {
            let v = mc.module_mut().probe_cell_voltage(addr, col, t).value();
            if init {
                prop_assert!(v > 0.60 && v <= 1.5, "v = {v}");
            } else {
                prop_assert!((0.0..0.90).contains(&v), "v = {v}");
            }
        }
    }
}
