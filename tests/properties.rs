//! Property-style tests on the core invariants.
//!
//! Formerly proptest-based; rewritten as deterministic sweeps driven by
//! the in-repo [`fracdram_stats::rng::Rng`] so the workspace builds with
//! no external dependencies and every run exercises the same cases.

use fracdram::frac::{frac_program, FRAC_CYCLES};
use fracdram::maj3::expected_majority;
use fracdram::puf::challenge_set;
use fracdram::retention::{classify_cells, BucketCounts, CellCategory, RetentionBucket};
use fracdram::rowsets::Quad;
use fracdram_model::{Geometry, GroupId, Module, ModuleConfig, RowAddr, SubarrayAddr};
use fracdram_softmc::MemoryController;
use fracdram_stats::rng::Rng;

const CASES: usize = 48;

fn controller(seed: u64) -> MemoryController {
    MemoryController::new(Module::new(ModuleConfig::single_chip(
        GroupId::B,
        seed,
        Geometry::tiny(),
    )))
}

/// DRAM is memory: any pattern written with legal timing reads back
/// exactly, on any row, repeatedly.
#[test]
fn write_read_roundtrip() {
    let mut rng = Rng::seed_from_u64(0xA11CE);
    for _ in 0..CASES {
        let pattern = rng.gen_bools(64);
        let bank = rng.gen_range(2);
        let row = rng.gen_range(64);
        let seed = rng.next_u64() % 1000;
        let mut mc = controller(seed);
        let addr = RowAddr::new(bank, row);
        mc.write_row(addr, &pattern).unwrap();
        assert_eq!(mc.read_row(addr).unwrap(), pattern);
        assert_eq!(mc.read_row(addr).unwrap(), pattern);
    }
}

/// The Frac program always costs exactly 7 cycles per operation and
/// never passes the JEDEC checker.
#[test]
fn frac_program_shape() {
    let mut rng = Rng::seed_from_u64(0xF7AC);
    for _ in 0..CASES {
        let count = 1 + rng.gen_range(19);
        let bank = rng.gen_range(2);
        let row = rng.gen_range(64);
        let p = frac_program(RowAddr::new(bank, row), count);
        assert_eq!(p.total_cycles().value(), FRAC_CYCLES * count as u64);
        let mc = controller(0);
        assert!(!mc.check(&p).is_empty());
    }
}

/// Quads built from any valid two-bit-differing pair contain exactly
/// the XOR-span of the pair, with R1/R2 first.
#[test]
fn quad_span_invariants() {
    let geometry = Geometry::tiny();
    for r1 in 0..32usize {
        for lo in 0..5usize {
            for hi in (lo + 1)..5usize {
                let r2 = r1 ^ (1 << lo) ^ (1 << hi);
                if r2 >= 32 {
                    continue;
                }
                let quad = Quad::from_pair(&geometry, SubarrayAddr::new(0, 0), r1, r2).unwrap();
                let roles = quad.local_roles();
                assert_eq!(roles[0], r1);
                assert_eq!(roles[1], r2);
                // All four rows agree outside the differing bits and are
                // distinct.
                let diff = r1 ^ r2;
                for &r in &roles {
                    assert_eq!(r & !diff, r1 & !diff);
                }
                let mut sorted = roles.to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), 4);
            }
        }
    }
}

/// Majority is symmetric under operand permutation and monotone.
#[test]
fn majority_truth_table_properties() {
    for bits in 0..8u8 {
        let (a, b, c) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
        let m = expected_majority([a, b, c]);
        assert_eq!(m, expected_majority([b, c, a]));
        assert_eq!(m, expected_majority([c, a, b]));
        // Flipping a single false->true can only keep or raise majority.
        if !a {
            assert!(expected_majority([true, b, c]) >= m);
        }
    }
}

/// Bucket tallies are a partition: counts sum to the input size and
/// the PDF sums to one.
#[test]
fn bucket_counts_partition() {
    let mut rng = Rng::seed_from_u64(0xB0CE7);
    for _ in 0..CASES {
        let len = 1 + rng.gen_range(199);
        let buckets: Vec<RetentionBucket> = (0..len)
            .map(|_| RetentionBucket::ALL[rng.gen_range(6)])
            .collect();
        let counts = BucketCounts::from_buckets(&buckets);
        assert_eq!(counts.total(), buckets.len());
        let pdf_sum: f64 = counts.pdf().iter().sum();
        assert!((pdf_sum - 1.0).abs() < 1e-9);
    }
}

/// Cell classification is exhaustive and consistent: every non-
/// increasing trajectory is monotonic-or-long, never Other.
#[test]
fn classification_consistency() {
    let mut rng = Rng::seed_from_u64(0xC1A55);
    for _ in 0..CASES {
        let start = rng.gen_range(6);
        let drops: Vec<usize> = (0..5).map(|_| rng.gen_range(2)).collect();
        let mut rank = start;
        let trajectory: Vec<Vec<RetentionBucket>> = std::iter::once(rank)
            .chain(drops.iter().map(|&d| {
                rank = rank.saturating_sub(d);
                rank
            }))
            .map(|r| vec![RetentionBucket::ALL[r]])
            .collect();
        let category = classify_cells(&trajectory)[0];
        if start == 5
            && trajectory
                .iter()
                .all(|b| b[0] == RetentionBucket::Over12Hours)
        {
            assert_eq!(category, CellCategory::LongRetention);
        } else {
            assert_eq!(category, CellCategory::MonotonicDecrease);
        }
    }
}

/// Challenge sets are always distinct, in range, and reproducible.
#[test]
fn challenge_set_properties() {
    let mut rng = Rng::seed_from_u64(0xCA11);
    for _ in 0..CASES {
        let n = 1 + rng.gen_range(63);
        let seed = rng.next_u64();
        let geometry = Geometry::tiny();
        let set = challenge_set(&geometry, n, seed);
        assert_eq!(set.len(), n);
        let mut unique = std::collections::HashSet::new();
        for c in &set {
            assert!(c.bank < geometry.banks);
            assert!(c.row < geometry.rows_per_bank());
            assert!(unique.insert((c.bank, c.row)));
        }
        assert_eq!(challenge_set(&geometry, n, seed), set);
    }
}

/// Fault injection is a pure function of (die seed, `FaultConfig`):
/// two controllers armed identically observe identical faulty reads
/// and identical fault counters, while a disarmed controller reads
/// back exactly what was written and counts zero events.
#[test]
fn fault_injection_determinism() {
    use fracdram_model::FaultConfig;
    let mut rng = Rng::seed_from_u64(0xFA17);
    for _ in 0..CASES {
        let seed = rng.next_u64() % 1000;
        let config = FaultConfig {
            stuck_density: rng.gen_range(5) as f64 * 0.02,
            weak_density: rng.gen_range(5) as f64 * 0.04,
            sense_flip_rate: rng.gen_range(4) as f64 * 0.01,
            ..FaultConfig::none()
        };
        let pattern = rng.gen_bools(64);
        let addr = RowAddr::new(rng.gen_range(2), rng.gen_range(32));
        let run = |cfg: &FaultConfig| {
            let mut mc = controller(seed);
            mc.module_mut().set_fault_config(cfg);
            mc.write_row(addr, &pattern).unwrap();
            let first = mc.read_row(addr).unwrap();
            let second = mc.read_row(addr).unwrap();
            (first, second, mc.model_perf().fault_events())
        };
        assert_eq!(run(&config), run(&config), "same seed+config, same run");
        let (healthy, _, events) = run(&FaultConfig::none());
        assert_eq!(healthy, pattern, "disarmed injection is a no-op");
        assert_eq!(events, 0);
    }
}

/// A fractional value never escapes the band between its initial
/// rail and Vdd/2 (clamped by physics, any op count, any init).
#[test]
fn fractional_band_invariant() {
    let mut rng = Rng::seed_from_u64(0xF7AC7);
    for _ in 0..CASES {
        let count = 1 + rng.gen_range(11);
        let init = rng.gen_bool();
        let row = rng.gen_range(32);
        let seed = rng.next_u64() % 100;
        let mut mc = controller(seed);
        let addr = RowAddr::new(0, row);
        fracdram::frac::store_fractional(&mut mc, addr, init, count).unwrap();
        let t = mc.clock();
        for col in [0usize, 13, 40] {
            let v = mc.module_mut().probe_cell_voltage(addr, col, t).value();
            if init {
                assert!(v > 0.60 && v <= 1.5, "v = {v}");
            } else {
                assert!((0.0..0.90).contains(&v), "v = {v}");
            }
        }
    }
}
