//! Cross-crate pipeline tests: full flows through controller, model,
//! primitives, and session bookkeeping.

use fracdram::frac::physical_pattern;
use fracdram::halfm::halfm_masked;
use fracdram::puf::Challenge;
use fracdram::rowsets::{Quad, Triplet};
use fracdram::session::FracDram;
use fracdram::FracDramError;
use fracdram_model::{Geometry, GroupId, Module, ModuleConfig, RowAddr, Seconds, SubarrayAddr};
use fracdram_softmc::{MemoryController, Program};

fn module(group: GroupId, seed: u64) -> Module {
    Module::new(ModuleConfig::single_chip(group, seed, Geometry::tiny()))
}

#[test]
fn session_guards_the_refresh_window_end_to_end() {
    let mut dram = FracDram::new(module(GroupId::B, 11));
    let row = RowAddr::new(0, 6);
    dram.store_fractional(row, true, 3).unwrap();

    // Refresh is blocked while the fractional value lives...
    assert!(matches!(
        dram.refresh(),
        Err(FracDramError::RefreshWouldDestroyFractional { rows: 1 })
    ));
    // ...and the 64 ms budget is tracked.
    assert!(!dram.fractional_overdue());
    dram.controller_mut().wait_seconds(Seconds(0.1));
    assert!(dram.fractional_overdue());

    // Consuming the value re-opens refresh.
    dram.read_row(row).unwrap();
    dram.refresh().unwrap();
}

#[test]
fn fmaj_through_the_session_computes_logical_majority() {
    let mut dram = FracDram::new(module(GroupId::C, 12));
    let geometry = dram.geometry();
    let quad = Quad::canonical(&geometry, SubarrayAddr::new(0, 0), GroupId::C).unwrap();
    let width = geometry.columns;
    let a: Vec<bool> = (0..width).map(|i| i % 2 == 0).collect();
    let b: Vec<bool> = (0..width).map(|i| i % 3 == 0).collect();
    let c: Vec<bool> = (0..width).map(|i| i % 5 == 0).collect();
    let config = fracdram::FmajConfig::best_for(GroupId::C);
    let result = dram.fmaj(&quad, &config, [&a, &b, &c]).unwrap();
    let correct = (0..width)
        .filter(|&i| result[i] == ([a[i], b[i], c[i]].iter().filter(|&&x| x).count() >= 2))
        .count();
    assert!(correct * 10 >= width * 9, "{correct}/{width} correct");
    assert!(
        dram.fractional_rows().is_empty(),
        "F-MAJ consumes the helper"
    );
}

#[test]
fn ternary_storage_roundtrip_with_halfm() {
    // §VI-C: write binary data + Half marks, read the mixture back.
    let mut mc = MemoryController::new(module(GroupId::B, 13));
    let geometry = *mc.module().geometry();
    let quad = Quad::canonical(&geometry, SubarrayAddr::new(0, 0), GroupId::B).unwrap();
    let width = geometry.columns;
    let data: Vec<bool> = (0..width).map(|i| i % 4 < 2).collect();
    let mask: Vec<bool> = (0..width).map(|i| i % 8 == 0).collect();
    halfm_masked(&mut mc, &quad, &data, &mask).unwrap();
    let read = mc.read_row(quad.rows(&geometry)[2]).unwrap();
    let data_cols_ok = (0..width)
        .filter(|&i| !mask[i])
        .filter(|&i| read[i] == data[i])
        .count();
    let data_cols = mask.iter().filter(|&&m| !m).count();
    assert!(
        data_cols_ok * 20 >= data_cols * 19,
        "binary columns corrupted: {data_cols_ok}/{data_cols}"
    );
}

#[test]
fn maj3_chains_feed_results_into_further_operations() {
    // Use an in-memory majority result as an operand of the next one.
    let mut mc = MemoryController::new(module(GroupId::B, 14));
    let geometry = *mc.module().geometry();
    let t0 = Triplet::first(&geometry, SubarrayAddr::new(0, 0));
    let width = geometry.columns;
    let ones = vec![true; width];
    let zeros = vec![false; width];
    let first = fracdram::maj3::maj3(&mut mc, &t0, [&ones, &ones, &zeros]).unwrap();
    let second = fracdram::maj3::maj3(&mut mc, &t0, [&first, &zeros, &zeros]).unwrap();
    // maj(maj(1,1,0), 0, 0) = maj(1, 0, 0) = 0 on well-behaved columns.
    let zero_share = second.iter().filter(|&&b| !b).count();
    assert!(zero_share * 10 >= width * 9, "{zero_share}/{width}");
}

#[test]
fn out_of_spec_programs_are_flagged_but_executable() {
    let mut mc = MemoryController::new(module(GroupId::B, 15));
    let frac = fracdram::frac::frac_program(RowAddr::new(0, 1), 1);
    assert!(!mc.check(&frac).is_empty(), "Frac must violate JEDEC");
    assert!(mc.run_checked(&frac).is_err(), "checked mode refuses it");
    assert!(mc.run(&frac).is_ok(), "SoftMC mode executes it");

    // A legal read-modify-write program passes the checker.
    let addr = RowAddr::new(0, 2);
    let legal: Program = mc.write_row_program(addr, &[true; 64]);
    assert!(mc.check(&legal).is_empty());
    mc.run_checked(&legal).unwrap();
}

#[test]
fn session_puf_responses_are_stable_across_refreshes() {
    let mut dram = FracDram::new(module(GroupId::B, 16));
    let challenge = Challenge::new(1, 9);
    let first = dram.puf_response(challenge).unwrap();
    dram.refresh().unwrap();
    let second = dram.puf_response(challenge).unwrap();
    let hd = fracdram_stats::hamming::normalized_distance(&first, &second);
    assert!(hd < 0.08, "intra-HD across refresh = {hd}");
}

#[test]
fn physical_patterns_respect_polarity_on_every_bank() {
    let mut mc = MemoryController::new(module(GroupId::F, 17));
    let geometry = *mc.module().geometry();
    for bank in 0..geometry.banks {
        let row = RowAddr::new(bank, 5);
        let ones = physical_pattern(&mut mc, row, true);
        let zeros = physical_pattern(&mut mc, row, false);
        assert!(ones.iter().zip(&zeros).all(|(a, b)| a != b));
        mc.write_row(row, &ones).unwrap();
        // Every cell now physically holds Vdd.
        let t = mc.clock();
        for col in [0, 7, 31] {
            let v = mc.module_mut().probe_cell_voltage(row, col, t).value();
            assert!((v - 1.5).abs() < 1e-6, "bank {bank} col {col}: {v}");
        }
    }
}
