//! Calibration targets from DESIGN.md §5: the *shapes* of the paper's
//! results must emerge from the analog mechanisms at test scale.

use fracdram::fmaj::{fmaj_coverage, FmajConfig};
use fracdram::frac::{frac_program, physical_pattern, store_fractional};
use fracdram::maj3::maj3_coverage;
use fracdram::multirow::survey;
use fracdram::retention::{measure_row, RetentionBucket};
use fracdram::rowsets::{Quad, Triplet};
use fracdram::verify::{verify_fractional, FracPlacement, OutcomeShares, VerifySetup};
use fracdram_model::{Geometry, GroupId, Module, ModuleConfig, RowAddr, SubarrayAddr};
use fracdram_softmc::MemoryController;

fn controller(group: GroupId, seed: u64) -> MemoryController {
    let geometry = Geometry {
        banks: 2,
        subarrays_per_bank: 2,
        rows_per_subarray: 32,
        columns: 256,
    };
    MemoryController::new(Module::new(ModuleConfig::single_chip(
        group, seed, geometry,
    )))
}

#[test]
fn frac_voltage_converges_geometrically_toward_half_vdd() {
    let mut mc = controller(GroupId::B, 1);
    let row = RowAddr::new(0, 4);
    let mut deltas = Vec::new();
    for count in 1..=6 {
        store_fractional(&mut mc, row, true, count).unwrap();
        let t = mc.clock();
        let v = mc.module_mut().probe_cell_voltage(row, 0, t).value();
        deltas.push(v - 0.75);
    }
    // Monotone decreasing, never crossing Vdd/2; geometric while far
    // from equilibrium (the floor is the cell's own injection offset).
    for w in deltas.windows(2) {
        assert!(w[1] > 0.0, "crossed Vdd/2: {deltas:?}");
        assert!(w[1] <= w[0], "not monotone: {deltas:?}");
        if w[0] > 0.05 {
            assert!(w[1] / w[0] < 0.75, "convergence too slow: {deltas:?}");
        }
    }
    assert!(deltas[5] < 0.05, "asymptote too far from Vdd/2: {deltas:?}");
}

#[test]
fn retention_buckets_shift_monotonically_with_frac_count() {
    let mut mc = controller(GroupId::B, 2);
    let row = RowAddr::new(0, 7);
    let mean_rank = |buckets: &[RetentionBucket]| {
        buckets.iter().map(|b| b.rank()).sum::<usize>() as f64 / buckets.len() as f64
    };
    let mut prev = f64::INFINITY;
    for count in [0usize, 1, 3, 5] {
        let rank = mean_rank(&measure_row(&mut mc, row, count).unwrap());
        assert!(
            rank < prev,
            "mean retention rank must fall as Frac ops accumulate ({count} ops: {rank} !< {prev})"
        );
        prev = rank;
    }
}

#[test]
fn baseline_maj3_coverage_sits_near_the_papers_98_percent() {
    let mut mc = controller(GroupId::B, 3);
    let geometry = *mc.module().geometry();
    let triplet = Triplet::first(&geometry, SubarrayAddr::new(0, 0));
    let coverage = maj3_coverage(&mut mc, &triplet).unwrap();
    assert!(
        (0.90..1.0).contains(&coverage),
        "baseline coverage = {coverage} (paper: 0.98)"
    );
}

#[test]
fn best_fmaj_config_beats_the_maj3_baseline_on_group_b() {
    let mut mc = controller(GroupId::B, 3);
    let geometry = *mc.module().geometry();
    let triplet = Triplet::first(&geometry, SubarrayAddr::new(0, 0));
    let quad = Quad::canonical(&geometry, SubarrayAddr::new(0, 1), GroupId::B).unwrap();
    let baseline = maj3_coverage(&mut mc, &triplet).unwrap();
    let config = FmajConfig::best_for(GroupId::B);
    let fmaj = fmaj_coverage(&mut mc, &quad, &config).unwrap();
    assert!(
        fmaj >= baseline - 0.01,
        "F-MAJ ({fmaj}) must match or beat MAJ3 ({baseline})"
    );
    assert!(
        fmaj > 0.93,
        "group B F-MAJ coverage = {fmaj} (paper: 0.998)"
    );
}

#[test]
fn groups_c_and_d_gain_majority_through_fmaj() {
    for (group, seed) in [(GroupId::C, 4), (GroupId::D, 5)] {
        let mut mc = controller(group, seed);
        let geometry = *mc.module().geometry();
        let triplet = Triplet::first(&geometry, SubarrayAddr::new(0, 0));
        // The original MAJ3 is impossible...
        assert!(fracdram::maj3::maj3_in_place(&mut mc, &triplet).is_err());
        // ...but F-MAJ works.
        let quad = Quad::canonical(&geometry, SubarrayAddr::new(0, 0), group).unwrap();
        let config = FmajConfig::best_for(group);
        let coverage = fmaj_coverage(&mut mc, &quad, &config).unwrap();
        assert!(coverage > 0.8, "group {group}: F-MAJ coverage = {coverage}");
    }
}

#[test]
fn verification_signature_appears_only_with_frac() {
    let mut mc = controller(GroupId::B, 6);
    let geometry = *mc.module().geometry();
    let triplet = Triplet::first(&geometry, SubarrayAddr::new(1, 0));
    let run = |mc: &mut MemoryController, ops: usize| {
        let setup = VerifySetup {
            placement: FracPlacement::R1R2,
            init_ones: true,
            frac_ops: ops,
        };
        OutcomeShares::from_pairs(&verify_fractional(mc, &triplet, &setup).unwrap())
    };
    assert!(run(&mut mc, 0).fractional_share() < 0.05);
    assert!(run(&mut mc, 2).fractional_share() > 0.9);
}

#[test]
fn capability_survey_matches_table_1_for_all_groups() {
    for group in GroupId::ALL {
        let mut mc = controller(group, 7);
        let caps = survey(&mut mc).unwrap();
        let p = group.profile();
        assert_eq!(caps.frac, p.supports_frac(), "{group} frac");
        assert_eq!(caps.three_row, p.supports_three_row(), "{group} 3-row");
        assert_eq!(caps.four_row, p.supports_four_row(), "{group} 4-row");
    }
}

#[test]
fn guarded_groups_are_inert_under_every_primitive() {
    for group in [GroupId::J, GroupId::K, GroupId::L] {
        let mut mc = controller(group, 8);
        let row = RowAddr::new(0, 3);
        let pattern = physical_pattern(&mut mc, row, true);
        mc.write_row(row, &pattern).unwrap();
        mc.run(&frac_program(row, 10)).unwrap();
        mc.wait(fracdram_model::Cycles(600));
        assert_eq!(mc.read_row(row).unwrap(), pattern, "{group} lost data");
    }
}
