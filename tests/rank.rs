//! Rank-level integration: every FracDRAM operation must survive the
//! 8-chip, byte-lane-striped module organization the paper's platform
//! actually drives (x8 chips behind one command bus).

use fracdram::fmaj::{fmaj, FmajConfig};
use fracdram::frac::store_fractional;
use fracdram::maj3::maj3;
use fracdram::multirow::survey;
use fracdram::puf::{evaluate, Challenge};
use fracdram::rowsets::{Quad, Triplet};
use fracdram_model::{Geometry, GroupId, Module, ModuleConfig, RowAddr, SubarrayAddr};
use fracdram_softmc::MemoryController;
use fracdram_stats::hamming::normalized_distance;

fn rank(group: GroupId, seed: u64) -> MemoryController {
    let geometry = Geometry {
        banks: 2,
        subarrays_per_bank: 2,
        rows_per_subarray: 32,
        columns: 128,
    };
    MemoryController::new(Module::new(ModuleConfig::rank(group, seed, geometry)))
}

#[test]
fn rank_roundtrip_uses_all_chips() {
    let mut mc = rank(GroupId::B, 51);
    let width = mc.module().row_bits();
    assert_eq!(width, 8 * 128, "eight chips of 128 columns");
    let pattern: Vec<bool> = (0..width).map(|i| (i * 31) % 7 < 3).collect();
    let addr = RowAddr::new(0, 9);
    mc.write_row(addr, &pattern).unwrap();
    assert_eq!(mc.read_row(addr).unwrap(), pattern);
}

#[test]
fn rank_survey_matches_single_chip() {
    for group in [GroupId::B, GroupId::C, GroupId::J] {
        let mut mc = rank(group, 52);
        let caps = survey(&mut mc).unwrap();
        let p = group.profile();
        assert_eq!(caps.frac, p.supports_frac(), "{group}");
        assert_eq!(caps.three_row, p.supports_three_row(), "{group}");
        assert_eq!(caps.four_row, p.supports_four_row(), "{group}");
    }
}

#[test]
fn rank_maj3_and_fmaj_compute_across_lanes() {
    let mut mc = rank(GroupId::B, 53);
    let geometry = *mc.module().geometry();
    let width = mc.module().row_bits();
    let a: Vec<bool> = (0..width).map(|i| i % 2 == 0).collect();
    let b: Vec<bool> = (0..width).map(|i| i % 3 == 0).collect();
    let c: Vec<bool> = (0..width).map(|i| i % 5 == 0).collect();
    let expect = |i: usize| [a[i], b[i], c[i]].iter().filter(|&&x| x).count() >= 2;

    let triplet = Triplet::first(&geometry, SubarrayAddr::new(0, 0));
    let result = maj3(&mut mc, &triplet, [&a, &b, &c]).unwrap();
    let ok = (0..width).filter(|&i| result[i] == expect(i)).count();
    assert!(ok * 10 >= width * 9, "rank MAJ3: {ok}/{width}");

    let quad = Quad::canonical(&geometry, SubarrayAddr::new(0, 1), GroupId::B).unwrap();
    let config = FmajConfig::best_for(GroupId::B);
    let result = fmaj(&mut mc, &quad, &config, [&a, &b, &c]).unwrap();
    let ok = (0..width).filter(|&i| result[i] == expect(i)).count();
    assert!(ok * 10 >= width * 9, "rank F-MAJ: {ok}/{width}");
}

#[test]
fn rank_puf_has_chip_level_diversity() {
    let challenge = Challenge::new(1, 7);
    let mut m1 = rank(GroupId::B, 54);
    let mut m2 = rank(GroupId::B, 55);
    let r1a = evaluate(&mut m1, challenge).unwrap();
    let r1b = evaluate(&mut m1, challenge).unwrap();
    let r2 = evaluate(&mut m2, challenge).unwrap();
    assert!(normalized_distance(&r1a, &r1b) < 0.08, "rank intra");
    assert!(normalized_distance(&r1a, &r2) > 0.2, "rank inter");
    // Per-lane weights: every chip contributes biased-but-nonconstant
    // bits (byte-lane striping interleaves them 8 bits at a time).
    for lane in 0..8 {
        let lane_bits: Vec<bool> = (0..r1a.len())
            .filter(|col| (col / 8) % 8 == lane)
            .map(|col| r1a.get(col).unwrap())
            .collect();
        let ones = lane_bits.iter().filter(|&&b| b).count();
        assert!(ones > 0 && ones < lane_bits.len(), "lane {lane} constant");
    }
}

#[test]
fn rank_fractional_state_is_consistent_across_chips() {
    let mut mc = rank(GroupId::B, 56);
    let row = RowAddr::new(0, 5);
    store_fractional(&mut mc, row, true, 3).unwrap();
    let t = mc.clock();
    // Every chip's cell 0 sits strictly between Vdd/2 and Vdd.
    for chip in 0..8 {
        let v = mc
            .module_mut()
            .chip_mut(chip)
            .probe_cell_voltage(row, 0, t)
            .value();
        assert!(v > 0.74 && v < 1.5, "chip {chip}: v = {v}");
    }
}
